// Replication wiring: how the repl package's Primary/Replica endpoints plug
// into this server's scheduler and crash discipline.
//
// Primary side: each worker, immediately after its Store.Apply group commit
// returns, appends the batch's committed mutations to a shared repl.Log
// (scheduler.go, worker.tap). Appends happen before the worker can park at a
// SYNC rendezvous, so by the barrier's fully-quiesced point the log covers
// every write the barrier covers — which is what lets -repl-sync implement
// "acknowledged ⇒ durable on the replica" by fencing the log's last sequence
// inside the barrier window. A CRASH bumps the replication generation and
// clears the log: groups streamed before the crash may have rolled back, so
// every replica is severed and resynced from a snapshot.
//
// Replica side: a kvApplier turns streamed groups into scheduler requests —
// the same submit/drain/Apply path client writes take — and then records the
// stream position in a reserved key (leading NUL byte, unreachable from the
// text protocol, never tapped or snapshotted). The position request is
// submitted only after the data requests complete, so its commit timestamp
// exceeds theirs and suffix rollback can never keep the position while
// dropping the data: the durable position is always ≤ the applied prefix,
// and re-applying from position+1 is idempotent. A crash that lands in the
// middle of an apply window is detected by the server's crash epoch and
// poisons the position (deleted, durably), forcing a snapshot resync instead
// of trusting a position that might be ahead of recovered data.
package main

import (
	"fmt"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"crafty"
	"crafty/internal/repl"
)

// replPosKey is the replica's durable stream-position record: "<gen> <seq>".
// The leading NUL keeps it out of the text protocol's reach (keys are
// space-split tokens of request lines, but the tap and snapshot exclude the
// prefix explicitly too).
var replPosKey = []byte("\x00repl.pos")

// replReserved reports whether a key belongs to the replication machinery
// itself and must never be streamed or snapshotted.
func replReserved(key []byte) bool { return len(key) > 0 && key[0] == 0 }

// replState is the server's replication half: role, generation, the group
// log, and whichever endpoint (primary, replica, or both across a
// promotion) is active.
type replState struct {
	srv *server

	log *repl.Log
	// gen is the replication generation. A fresh primary starts at 1; every
	// primary CRASH recovery and every promotion bumps it, forcing replicas
	// whose streamed prefix may disagree with the recovered state through
	// the snapshot path.
	gen atomic.Uint64
	// isReplica gates the write path: while true, client mutations are
	// refused and worker batches are not tapped (the applier's own writes
	// route through the same workers). PROMOTE flips it last.
	isReplica atomic.Bool

	syncMode    bool
	syncTimeout time.Duration

	mu      sync.Mutex
	primary *repl.Primary
	replica *repl.Replica
	applier *kvApplier
}

func newReplState(s *server, cfg config) *replState {
	rs := &replState{
		srv:         s,
		log:         repl.NewLog(cfg.ReplLogCap),
		syncMode:    cfg.ReplSync,
		syncTimeout: cfg.ReplSyncTimeout,
	}
	if rs.syncTimeout <= 0 {
		rs.syncTimeout = 5 * time.Second
	}
	rs.applier = &kvApplier{s: s}
	rs.gen.Store(1)
	if cfg.ReplicaOf != "" {
		rs.isReplica.Store(true)
	}
	return rs
}

func (rs *replState) getPrimary() *repl.Primary {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.primary
}

func (rs *replState) getReplica() *repl.Replica {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.replica
}

// tapping reports whether worker batches should be appended to the log:
// replication configured and currently acting as primary.
func (rs *replState) tapping() bool { return !rs.isReplica.Load() }

// startPrimary serves the replication protocol on l (the -repl-listen
// address). It is safe to start while still a replica: handshakes are
// refused with "not primary" until a PROMOTE flips the role.
func (s *server) startPrimary(l net.Listener) {
	rs := s.repl
	p := repl.NewPrimary(repl.PrimaryConfig{
		Log:      rs.log,
		Snapshot: s.replSnapshot,
		Gen:      rs.gen.Load,
		Accept: func() error {
			if rs.isReplica.Load() {
				return fmt.Errorf("not primary")
			}
			if s.recovering.Load() {
				return fmt.Errorf("recovering, retry shortly")
			}
			return nil
		},
		Logf: log.Printf,
	})
	rs.mu.Lock()
	rs.primary = p
	rs.mu.Unlock()
	go p.Serve(l)
}

// startReplica begins replicating from the -replica-of primary. A nil dial
// falls back to the config's ReplDial (the drills' netfault injection point)
// and then to plain TCP.
func (s *server) startReplica(primaryAddr string, dial func(string) (net.Conn, error)) {
	rs := s.repl
	if dial == nil {
		dial = s.cfg.ReplDial
	}
	r := repl.NewReplica(repl.ReplicaConfig{
		Addr:    primaryAddr,
		Dial:    dial,
		Applier: rs.applier,
		Logf:    log.Printf,
	})
	rs.mu.Lock()
	rs.replica = r
	rs.mu.Unlock()
	go r.Run()
}

// replSnapshot is the Primary's catch-up source: under the SYNC barrier's
// fully-quiesced window it checkpoints (so the on-NVM watermark matches what
// the replica receives) and walks the whole store, recording the log
// sequence the state corresponds to. Reserved keys stay out.
func (s *server) replSnapshot() (entries []repl.Entry, seq, gen uint64, err error) {
	rs := s.repl
	err = s.syncWith(func() error {
		s.mu.RLock()
		defer s.mu.RUnlock()
		if _, err := s.store.Checkpoint(s.eng); err != nil {
			return fmt.Errorf("checkpoint: %w", err)
		}
		entries = entries[:0]
		if err := s.store.Snapshot(s.heap, func(e crafty.KVSnapshotEntry) error {
			if replReserved(e.Key) {
				return nil
			}
			buf := make([]byte, 0, len(e.Key)+len(e.Value))
			buf = append(buf, e.Key...)
			buf = append(buf, e.Value...)
			entries = append(entries, repl.Entry{Key: buf[:len(e.Key)], Value: buf[len(e.Key):]})
			return nil
		}); err != nil {
			return err
		}
		seq = rs.log.LastSeq()
		gen = rs.gen.Load()
		return nil
	})
	if err != nil {
		return nil, 0, 0, err
	}
	s.obs.replSnapshots.Inc(0)
	return entries, seq, gen, nil
}

// replicatedSync is the SYNC command's implementation. Plain mode is the
// usual barrier. In -repl-sync mode (acting as primary), the barrier's
// fully-quiesced hook additionally waits for a replica to durably
// acknowledge the log's last sequence — every write the barrier covers is in
// the log by then (appends precede barrier parking in each worker's queue),
// so a successful reply means: rollback-proof here AND on a replica. A
// missing or stalled replica fails the SYNC loudly within the timeout.
func (s *server) replicatedSync() error {
	rs := s.repl
	if rs == nil || !rs.syncMode || rs.isReplica.Load() {
		return s.sync()
	}
	p := rs.getPrimary()
	if p == nil {
		return s.sync()
	}
	return s.syncWith(func() error {
		seq := rs.log.LastSeq()
		s.obs.replSyncWaits.Inc(0)
		return p.WaitDurable(seq, rs.syncTimeout)
	})
}

// onCrashRecovered runs at the end of a CRASH recovery, still under the
// write lock: streamed groups may have rolled back with the rest of the
// suffix, so the retained log is untrustworthy — bump the generation, drop
// the log, and sever every replica so they re-handshake into the snapshot
// path. Replica role needs nothing: its own applier detects the crash via
// the epoch and poisons its position if the crash split an apply window.
func (s *server) onCrashRecovered() {
	s.crashEpoch.Add(1)
	rs := s.repl
	if rs == nil || rs.isReplica.Load() {
		return
	}
	rs.gen.Add(1)
	rs.log.Clear()
	if p := rs.getPrimary(); p != nil {
		p.Sever()
	}
}

// promote flips a replica into a primary: stop pulling from the old
// primary, quiesce and checkpoint, then start accepting (and tapping)
// writes under a fresh generation. The stream position it had applied seeds
// the log's numbering, so REPLINFO sequences stay comparable across the
// failover.
func (s *server) promote() (string, error) {
	rs := s.repl
	if rs == nil {
		return "", fmt.Errorf("replication not configured")
	}
	if !rs.isReplica.Load() {
		return "", fmt.Errorf("already primary")
	}
	rs.mu.Lock()
	r := rs.replica
	rs.replica = nil
	rs.mu.Unlock()
	if r != nil {
		r.Stop()
	}
	// The stopped session may still have an apply request in flight on the
	// scheduler; the barrier below orders the checkpoint after it.
	seq, gen, err := rs.applier.Position()
	if err != nil {
		return "", fmt.Errorf("read position: %w", err)
	}
	var rep crafty.KVCheckpointReport
	if err := s.syncWith(func() error {
		s.mu.RLock()
		defer s.mu.RUnlock()
		var err error
		rep, err = s.store.Checkpoint(s.eng)
		return err
	}); err != nil {
		return "", fmt.Errorf("checkpoint: %w", err)
	}
	newGen := gen + 1
	if g := rs.gen.Load(); newGen <= g {
		newGen = g + 1
	}
	rs.log.SkipTo(seq)
	rs.gen.Store(newGen)
	rs.isReplica.Store(false) // last: writes (and taps) start here
	log.Printf("craftykv: promoted to primary: gen=%d seq=%d checkpoint_seq=%d", newGen, seq, rep.Seq)
	return fmt.Sprintf("OK gen=%d seq=%d", newGen, seq), nil
}

// replInfo renders the REPLINFO reply.
func (s *server) replInfo() string {
	rs := s.repl
	if rs == nil {
		return "REPLINFO role=primary repl=off"
	}
	if rs.isReplica.Load() {
		r := rs.getReplica()
		if r == nil {
			return fmt.Sprintf("REPLINFO role=replica gen=%d connected=false", rs.gen.Load())
		}
		return fmt.Sprintf("REPLINFO role=replica gen=%d applied=%d connected=%t reconnects=%d snapshots=%d",
			r.Gen(), r.AppliedSeq(), r.Connected(), r.Reconnects(), r.Snapshots())
	}
	p := rs.getPrimary()
	if p == nil {
		return fmt.Sprintf("REPLINFO role=primary gen=%d seq=%d replicas=0", rs.gen.Load(), rs.log.LastSeq())
	}
	return fmt.Sprintf("REPLINFO role=primary gen=%d seq=%d acked=%d lag=%d replicas=%d snapshots=%d sync=%t",
		rs.gen.Load(), rs.log.LastSeq(), p.AckedSeq(), p.Lag(), p.Replicas(), p.Snapshots(), rs.syncMode)
}

// kvApplier implements repl.Applier over the server's scheduler: streamed
// groups become requests, so they share group commits, per-shard ordering,
// and the crash discipline with everything else.
type kvApplier struct {
	s *server
	// curGen is the generation the recorded position belongs to, refreshed
	// by Position and ApplySnapshot.
	curGen atomic.Uint64
	// sessEpoch is the server's crash epoch as of this session's last
	// consistent point (Position read, snapshot applied). Every apply and
	// fence first checks the live epoch against it: a CRASH between apply
	// windows rolls unfenced groups back while the session's in-memory
	// position marches on, so continuing the stream — or worse, durably
	// acking a fence over the rolled-back state — would open a hole. The
	// mismatch errors the session; the reconnect re-reads the durable
	// position (which rollback can never strand ahead of the data) and
	// resumes from there.
	sessEpoch atomic.Uint64
}

// runOps submits one request carrying ops and waits for it; any per-op
// error fails the whole call.
func (a *kvApplier) runOps(build func(req *request)) error {
	req := newRequest(cmdMPut) // kind is irrelevant: nothing renders this request
	build(req)
	if len(req.ops) == 0 {
		requestPool.Put(req)
		return nil
	}
	a.s.submit(req)
	<-req.done
	var err error
	for i := range req.res {
		if e := req.res[i].err; e != nil {
			err = fmt.Errorf("op %d: %w", i, e)
			break
		}
	}
	requestPool.Put(req)
	return err
}

// writePos records "<gen> <seq>" under the reserved key. Submitted only
// after the data it covers completed, so its commit timestamp is the
// window's highest and suffix rollback cannot strand it ahead of the data.
func (a *kvApplier) writePos(seq, gen uint64) error {
	return a.runOps(func(req *request) {
		req.addOp(crafty.KVPut, string(replPosKey), fmt.Sprintf("%d %d", gen, seq))
	})
}

// poisonPos durably deletes the position record after a crash landed inside
// an apply window (the recovered data may have holes the position would
// paper over). Loops until delete + fence complete crash-free.
func (a *kvApplier) poisonPos() {
	for {
		e0 := a.s.crashEpoch.Load()
		err := a.runOps(func(req *request) {
			req.addOp(crafty.KVDelete, string(replPosKey), "")
		})
		if err == nil {
			err = a.s.sync()
		}
		if err == nil && a.s.crashEpoch.Load() == e0 {
			return
		}
	}
}

// ApplyGroups applies whole groups in order, then records the position. A
// crash epoch change across the window means some of these commits may have
// rolled back while later ones (drained post-recovery) stuck — the position
// can no longer be trusted relative to the data, so it is poisoned and the
// session errors out into a snapshot resync.
func (a *kvApplier) ApplyGroups(gs []repl.Group) error {
	if len(gs) == 0 {
		return nil
	}
	e0 := a.s.crashEpoch.Load()
	if e0 != a.sessEpoch.Load() {
		// A crash landed since this session's last consistent point: unfenced
		// applied groups may have rolled back behind the in-memory position.
		// The durable position is intact (it can only trail the data), so no
		// poisoning — just force a re-handshake from it.
		return fmt.Errorf("crash recovery since last apply; rewinding to the durable position")
	}
	err := a.runOps(func(req *request) {
		for _, g := range gs {
			for _, op := range g.Ops {
				if op.Delete {
					req.addOp(crafty.KVDelete, string(op.Key), "")
				} else {
					req.addOp(crafty.KVPut, string(op.Key), string(op.Value))
				}
			}
		}
	})
	if err == nil {
		err = a.writePos(gs[len(gs)-1].Seq, a.curGen.Load())
	}
	if a.s.crashEpoch.Load() != e0 {
		a.poisonPos()
		return fmt.Errorf("crash recovery interleaved with replicated apply; position reset")
	}
	return err
}

// ApplySnapshot replaces the store contents with the snapshot: the local
// state is dumped at a quiesced point, keys absent from the snapshot are
// deleted, differing or new pairs are written, and the position is recorded
// and fenced. The only writer on a replica is this applier, so nothing
// mutates between the dump and the diff application (a crash in between is
// caught by the epoch check).
func (a *kvApplier) ApplySnapshot(entries []repl.Entry, seq, gen uint64) error {
	e0 := a.s.crashEpoch.Load()
	want := make(map[string]string, len(entries))
	for _, e := range entries {
		want[string(e.Key)] = string(e.Value)
	}
	local := map[string]string{}
	if err := a.s.syncWith(func() error {
		a.s.mu.RLock()
		defer a.s.mu.RUnlock()
		return a.s.store.Snapshot(a.s.heap, func(e crafty.KVSnapshotEntry) error {
			if !replReserved(e.Key) {
				local[string(e.Key)] = string(e.Value)
			}
			return nil
		})
	}); err != nil {
		return fmt.Errorf("dump local state: %w", err)
	}
	err := a.runOps(func(req *request) {
		for k := range local {
			if _, ok := want[k]; !ok {
				req.addOp(crafty.KVDelete, k, "")
			}
		}
		for k, v := range want {
			if lv, ok := local[k]; !ok || lv != v {
				req.addOp(crafty.KVPut, k, v)
			}
		}
	})
	if err == nil {
		err = a.writePos(seq, gen)
	}
	if err == nil {
		// Make the whole transfer rollback-proof: a crash right after must
		// resume from seq, not redo the bulk load.
		err = a.s.sync()
	}
	if a.s.crashEpoch.Load() != e0 {
		a.poisonPos()
		return fmt.Errorf("crash recovery interleaved with snapshot apply; position reset")
	}
	if err == nil {
		a.curGen.Store(gen)
		a.sessEpoch.Store(e0)
	}
	return err
}

// Fence is the replica's durability barrier (FENCE frame handler). The epoch
// checks keep a CRASH racing the barrier from producing a false durable ACK:
// a crash before the sync may have rolled applied groups back (the sync would
// then durably seal the rolled-back state), and a crash during it voids the
// quiesce — in either case the session errors instead of acking, and resumes
// from the durable position.
func (a *kvApplier) Fence() error {
	e0 := a.s.crashEpoch.Load()
	if e0 != a.sessEpoch.Load() {
		return fmt.Errorf("crash recovery since last apply; refusing durable ack")
	}
	if err := a.s.sync(); err != nil {
		return err
	}
	if a.s.crashEpoch.Load() != e0 {
		return fmt.Errorf("crash recovery interleaved with fence; refusing durable ack")
	}
	return nil
}

// Position reads the recorded stream position; absent means "never synced"
// (a fresh replica, or a poisoned position after a crash split a window).
// The read retries until a crash-free window brackets it: a position read
// just before a crash could exceed the rolled-back data, so only an
// epoch-stable read is allowed to seed a session.
func (a *kvApplier) Position() (seq, gen uint64, err error) {
	for {
		e0 := a.s.crashEpoch.Load()
		var found bool
		var val string
		rerr := a.runOpsRead(func(req *request) {
			req.addOp(crafty.KVGet, string(replPosKey), "")
		}, func(req *request) {
			found = req.res[0].found
			val = string(req.res[0].val)
		})
		if rerr != nil {
			return 0, 0, rerr
		}
		if a.s.crashEpoch.Load() != e0 {
			continue
		}
		a.sessEpoch.Store(e0)
		if !found {
			return 0, 0, nil
		}
		if _, err := fmt.Sscanf(val, "%d %d", &gen, &seq); err != nil {
			return 0, 0, fmt.Errorf("corrupt position record %q", val)
		}
		a.curGen.Store(gen)
		return seq, gen, nil
	}
}

// runOpsRead is runOps with a result extractor run before the request is
// pooled.
func (a *kvApplier) runOpsRead(build func(req *request), read func(req *request)) error {
	req := newRequest(cmdMPut)
	build(req)
	a.s.submit(req)
	<-req.done
	var err error
	for i := range req.res {
		if e := req.res[i].err; e != nil {
			err = fmt.Errorf("op %d: %w", i, e)
			break
		}
	}
	if err == nil {
		read(req)
	}
	requestPool.Put(req)
	return err
}

// replicaRefusal is the reply replicated mutations get on a replica.
const replicaRefusal = "ERR read-only replica (PROMOTE to accept writes)"

// writesRefused reports whether client mutations should be refused
// (replica role).
func (s *server) writesRefused() bool {
	return s.repl != nil && s.repl.isReplica.Load()
}
