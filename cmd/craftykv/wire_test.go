package main

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net"
	"strings"
	"testing"

	"crafty"
	"crafty/internal/wire"
)

// binClient is a binary-protocol test client: handshake done, frames in and
// out.
type binClient struct {
	conn net.Conn
	enc  *wire.Encoder
	w    *bufio.Writer
	rd   *wire.Reader
	ver  byte
}

// dialBin connects and completes the handshake at clientVer.
func dialBin(t *testing.T, addr string, clientVer byte) *binClient {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	w := bufio.NewWriter(conn)
	enc := wire.NewEncoder(w)
	if err := enc.Handshake(clientVer); err != nil {
		t.Fatal(err)
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	var hs [wire.HandshakeLen]byte
	if _, err := io.ReadFull(br, hs[:]); err != nil {
		t.Fatalf("reading handshake ack: %v", err)
	}
	ver, err := wire.ParseHandshake(hs[:])
	if err != nil {
		t.Fatalf("handshake ack: %v", err)
	}
	return &binClient{conn: conn, enc: enc, w: w, rd: wire.NewReader(br, 0), ver: ver}
}

// next flushes pending frames and reads one response frame.
func (c *binClient) next(t *testing.T) (wire.Type, []byte) {
	t.Helper()
	if err := c.enc.Flush(); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := c.rd.Next()
	if err != nil {
		t.Fatalf("reading response frame: %v", err)
	}
	return typ, payload
}

// expect flushes and asserts the next frame's type and payload.
func (c *binClient) expect(t *testing.T, wantType wire.Type, wantPayload string) {
	t.Helper()
	typ, payload := c.next(t)
	if typ != wantType || string(payload) != wantPayload {
		t.Fatalf("got (%v, %q), want (%v, %q)", typ, payload, wantType, wantPayload)
	}
}

func (c *binClient) expectUint(t *testing.T, want uint64) {
	t.Helper()
	typ, payload := c.next(t)
	if typ != wire.TUint {
		t.Fatalf("got (%v, %q), want TUint", typ, payload)
	}
	v, err := wire.DecodeUintPayload(payload)
	if err != nil || v != want {
		t.Fatalf("TUint = (%d, %v), want %d", v, err, want)
	}
}

// TestWireHandshake pins version negotiation: the server answers with
// min(its version, the client's).
func TestWireHandshake(t *testing.T) {
	addr := startServer(t)
	if c := dialBin(t, addr, wire.Version); c.ver != wire.Version {
		t.Fatalf("negotiated version %d, want %d", c.ver, wire.Version)
	}
	// A futuristic client is answered at the server's version, not its own.
	if c := dialBin(t, addr, 9); c.ver != wire.Version {
		t.Fatalf("negotiated version %d for a v9 client, want %d", c.ver, wire.Version)
	}
}

// TestWireBadHandshakeRejected: 0xCF without the full magic is refused with
// a text error (the one encoding a confused client definitely reads).
func TestWireBadHandshakeRejected(t *testing.T) {
	addr := startServer(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte{wire.Magic0, 'X', 'X', 1, '\n'}); err != nil {
		t.Fatal(err)
	}
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil || !strings.HasPrefix(line, "ERR ") {
		t.Fatalf("got (%q, %v), want an ERR line", line, err)
	}
}

// TestWireCommands drives every request frame type against a live server.
func TestWireCommands(t *testing.T) {
	addr := startServer(t)
	c := dialBin(t, addr, wire.Version)

	c.enc.Get([]byte("nothing"))
	c.expect(t, wire.TNil, "")

	c.enc.Put([]byte("greeting"), []byte("hello"))
	c.expect(t, wire.TOK, "")
	c.enc.Get([]byte("greeting"))
	c.expect(t, wire.TVal, "hello")

	c.enc.MPut([][]byte{[]byte("a"), []byte("1"), []byte("b"), []byte("2")})
	c.expectUint(t, 2)

	c.enc.MGet([][]byte{[]byte("a"), []byte("b"), []byte("nope")})
	c.expect(t, wire.TVal, "1")
	c.expect(t, wire.TVal, "2")
	c.expect(t, wire.TNil, "")

	c.enc.Request0(wire.TLen)
	c.expectUint(t, 3)

	c.enc.MDel([][]byte{[]byte("a"), []byte("nope")})
	c.expect(t, wire.TOK, "")
	c.expect(t, wire.TNil, "")

	c.enc.Del([]byte("b"))
	c.expect(t, wire.TOK, "")
	c.enc.Del([]byte("b"))
	c.expect(t, wire.TNil, "")

	c.enc.Request0(wire.TSync)
	c.expect(t, wire.TOK, "")

	c.enc.Request0(wire.TCheckpoint)
	if typ, payload := c.next(t); typ != wire.TText || !strings.HasPrefix(string(payload), "OK seq=") {
		t.Fatalf("CHECKPOINT: got (%v, %q)", typ, payload)
	}

	c.enc.Request0(wire.TInfo)
	typ, payload := c.next(t)
	if typ != wire.TText || !strings.HasPrefix(string(payload), "INFO ") {
		t.Fatalf("INFO: got (%v, %.40q...)", typ, payload)
	}
	if !strings.Contains(string(payload), "\nwire.frames ") {
		t.Fatalf("INFO over binary lacks the wire.frames counter:\n%.200s", payload)
	}
}

// TestWireCrashRecovery: a synced write over the binary protocol survives an
// injected crash issued over the binary protocol.
func TestWireCrashRecovery(t *testing.T) {
	addr := startServerPersist(t, 0)
	c := dialBin(t, addr, wire.Version)
	c.enc.Put([]byte("durable"), []byte("yes"))
	c.expect(t, wire.TOK, "")
	c.enc.Request0(wire.TSync)
	c.expect(t, wire.TOK, "")
	c.enc.Request0(wire.TCrash)
	if typ, payload := c.next(t); typ != wire.TText || !strings.HasPrefix(string(payload), "OK rolled_back=") {
		t.Fatalf("CRASH: got (%v, %q)", typ, payload)
	}
	c.enc.Get([]byte("durable"))
	c.expect(t, wire.TVal, "yes")
}

// TestWirePipelinedBurst: many frames in one write, every reply in order,
// and the multi-op frame decodes into one scheduler request (1:1 op
// mapping).
func TestWirePipelinedBurst(t *testing.T) {
	addr := startServer(t)
	c := dialBin(t, addr, wire.Version)
	const n = 64
	for i := 0; i < n; i++ {
		c.enc.Put([]byte(fmt.Sprintf("k%03d", i)), []byte(fmt.Sprintf("v%03d", i)))
	}
	for i := 0; i < n; i++ {
		c.expect(t, wire.TOK, "")
	}
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("k%03d", i))
	}
	c.enc.MGet(keys)
	for i := 0; i < n; i++ {
		c.expect(t, wire.TVal, fmt.Sprintf("v%03d", i))
	}
}

// TestWireTextInterop: both protocols read each other's writes on one
// server.
func TestWireTextInterop(t *testing.T) {
	addr := startServer(t)
	bc := dialBin(t, addr, wire.Version)
	tc := dial(t, addr)

	tc.expect(t, "PUT fromtext hello", "OK")
	bc.enc.Get([]byte("fromtext"))
	bc.expect(t, wire.TVal, "hello")

	bc.enc.Put([]byte("frombin"), []byte("world"))
	bc.expect(t, wire.TOK, "")
	tc.expect(t, "GET frombin", "VAL world")
}

// TestWireOversizedFrame: a frame over the limit draws the typed refusal and
// the connection survives — the binary twin of TestOverlongLineRejected.
func TestWireOversizedFrame(t *testing.T) {
	addr := startServer(t)
	c := dialBin(t, addr, wire.Version)
	c.enc.Put([]byte("big"), bytes.Repeat([]byte("x"), maxFrame+512))
	c.expect(t, wire.TErr, "frame too large "+fmt.Sprint(maxFrame))
	// The reader discarded the frame whole; the stream is still framed.
	c.enc.Put([]byte("survivor"), []byte("v"))
	c.expect(t, wire.TOK, "")
	c.enc.Get([]byte("survivor"))
	c.expect(t, wire.TVal, "v")
}

// TestWireMalformedPayload: a bad payload inside a well-framed frame is
// answered and the connection stays alive; so is an unknown frame type.
func TestWireMalformedPayload(t *testing.T) {
	addr := startServer(t)
	c := dialBin(t, addr, wire.Version)

	// TPut frame with an empty key: frame = size(4) type(TPut) 0x00 0x01 'v'.
	c.w.Write([]byte{4, byte(wire.TPut), 0, 1, 'v'})
	typ, payload := c.next(t)
	if typ != wire.TErr || !strings.Contains(string(payload), "empty key") {
		t.Fatalf("empty-key PUT: got (%v, %q)", typ, payload)
	}

	// Unknown frame type.
	c.w.Write([]byte{1, 0x7F})
	typ, payload = c.next(t)
	if typ != wire.TErr || !strings.Contains(string(payload), "unknown frame type") {
		t.Fatalf("unknown type: got (%v, %q)", typ, payload)
	}

	c.enc.Get([]byte("still")) // connection alive after both
	c.expect(t, wire.TNil, "")
}

// TestWireDesyncCloses: a framing-level violation (non-minimal size
// encoding) is fatal — the server answers once and closes.
func TestWireDesyncCloses(t *testing.T) {
	addr := startServer(t)
	c := dialBin(t, addr, wire.Version)
	c.w.Write([]byte{0xF8, 0x02, 0x00, byte(wire.TLen), 0}) // size 2 as 16-bit
	typ, payload := c.next(t)
	if typ != wire.TErr {
		t.Fatalf("got (%v, %q), want TErr", typ, payload)
	}
	if _, _, err := c.rd.Next(); err == nil {
		t.Fatal("connection still open after a framing violation")
	}
}

// TestDispatchTokenizerAllocs pins the text hot path's per-request
// allocation count: tokenizing a line and building its ops into a warmed
// pooled request allocates nothing (the request's done channel, made in
// newRequest, is the one remaining per-request allocation and is excluded by
// reusing the request here).
func TestDispatchTokenizerAllocs(t *testing.T) {
	line := []byte("MPUT key1 value1 key2 value2 key3 value3 key4 value4")
	req := &request{}
	warm := func() {
		cmd, rest, _ := cutSpace(line)
		if !cmdIs(cmd, "MPUT") {
			t.Fatal("tokenizer lost the command")
		}
		f := fields{b: rest}
		if n := f.count(); n != 8 {
			t.Fatalf("count = %d, want 8", n)
		}
		req.ops = req.ops[:0]
		req.res = req.res[:0]
		req.buf = req.buf[:0]
		for {
			k, ok := f.next()
			if !ok {
				break
			}
			v, _ := f.next()
			req.addOpBytes(crafty.KVPut, k, v)
		}
		if len(req.ops) != 4 {
			t.Fatalf("ops = %d, want 4", len(req.ops))
		}
	}
	warm()
	if allocs := testing.AllocsPerRun(200, warm); allocs != 0 {
		t.Errorf("text tokenize+build allocates %v per request, want 0", allocs)
	}
}
