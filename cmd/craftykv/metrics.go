// Server-side observability: one obs.Registry merging every layer's
// instruments — the engine's SGL/log counters, the store's group-commit and
// rehash counters, the heap's persist-operation totals, and the server's own
// connection/scheduler instruments — surfaced three ways: the -metrics HTTP
// listener (flat JSON snapshot plus net/http/pprof), the INFO wire command
// (the same snapshot as "name value" lines), and the -metrics-log periodic
// one-liner. Hot paths stamp pre-registered instruments (allocation-free,
// outside transaction bodies — see internal/obs and DESIGN.md §11); all
// merging happens here, at snapshot time.
package main

import (
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"

	"crafty"
	"crafty/internal/htm"
	"crafty/internal/obs"
	"crafty/internal/ptm"
)

// serverMetrics is the server's instrument block. The engine and store blocks
// (engM, kvM) are captured at startup and re-adopted into each recovered
// engine/store (server.crash), so totals span crash incarnations; the
// engine's own per-thread outcome counters reset at reopen and are sampled
// as-is (they describe the current incarnation).
type serverMetrics struct {
	reg *obs.Registry

	engM *crafty.EngineMetrics
	kvM  *crafty.KVMetrics

	// Connection-level traffic: open/accepted connections, dispatched
	// commands, protocol-level errors, raw bytes each way, and the size
	// distribution of pipelined response bursts (responses per flush).
	conns      *obs.Gauge
	connsTotal *obs.Counter
	cmds       *obs.Counter
	cmdErrs    *obs.Counter
	bytesIn    *obs.Counter
	bytesOut   *obs.Counter
	bursts     *obs.Histogram

	// Binary protocol (wire.go): frames decoded, wire bytes consumed
	// (handshake and headers included), and framing/decode refusals. The
	// conn.* counters above cover both protocols; these isolate the binary
	// path so the two can be compared per protocol.
	wireFrames *obs.Counter
	wireBytes  *obs.Counter
	wireErrs   *obs.Counter

	// Scheduler: per-op enqueue→reply latency (stamped at parse time and at
	// render time, both outside any transaction), drained batch sizes, SYNC
	// barriers and their wall time.
	opLatency  *obs.Histogram
	drainBatch *obs.Histogram
	syncs      *obs.Counter
	syncWaitNs *obs.Histogram

	// Injected crashes and total recovery wall time (rollback + engine
	// reopen + index verification).
	crashes    *obs.Counter
	recoveryNs *obs.Histogram

	// Graceful-degradation and replication instruments. connsRefused counts
	// connections turned away by -max-conns; the repl counters are stamped by
	// the replication wiring (repl.go) and registered unconditionally so that
	// code never has to nil-check, but the repl.* gauges (groups, lag, roles)
	// are sampled only when replication is configured.
	connsRefused  *obs.Counter
	replSyncWaits *obs.Counter
	replSnapshots *obs.Counter
}

// newServerMetrics builds the registry over a fully constructed server. It
// must run after the workers exist (their queue-depth gauges close over the
// queues) and before any worker goroutine starts (workers record drained
// batch sizes unconditionally).
func newServerMetrics(s *server) *serverMetrics {
	reg := obs.NewRegistry()
	m := &serverMetrics{
		reg:  reg,
		engM: s.eng.Metrics(),
		kvM:  s.store.Metrics(),
	}
	m.engM.RegisterInto(reg, "core")
	m.kvM.RegisterInto(reg, "kv")
	s.heap.RegisterMetrics(reg, "nvm")

	m.conns = reg.Gauge("conn.open")
	m.connsTotal = reg.Counter("conn.total")
	m.cmds = reg.Counter("conn.commands")
	m.cmdErrs = reg.Counter("conn.protocol_errors")
	m.bytesIn = reg.Counter("conn.bytes_in")
	m.bytesOut = reg.Counter("conn.bytes_out")
	m.bursts = reg.Histogram("conn.burst_responses")

	m.wireFrames = reg.Counter("wire.frames")
	m.wireBytes = reg.Counter("wire.bytes")
	m.wireErrs = reg.Counter("wire.protocol_errors")

	m.opLatency = reg.Histogram("sched.op_latency_ns")
	m.drainBatch = reg.Histogram("sched.drain_batch")
	m.syncs = reg.Counter("sched.syncs")
	m.syncWaitNs = reg.Histogram("sched.sync_wait_ns")

	m.crashes = reg.Counter("srv.crashes")
	m.recoveryNs = reg.Histogram("srv.recovery_ns")

	m.connsRefused = reg.Counter("conn.refused")
	m.replSyncWaits = reg.Counter("repl.sync_waits")
	m.replSnapshots = reg.Counter("repl.snapshots")

	if rs := s.repl; rs != nil {
		// Endpoints start after the registry exists (main wires listeners
		// last), so every sampler re-fetches them nil-safely.
		reg.Func("repl.groups", func() int64 { return int64(rs.log.LastSeq()) })
		reg.Func("repl.gen", func() int64 { return int64(rs.gen.Load()) })
		reg.Func("repl.is_replica", func() int64 {
			if rs.isReplica.Load() {
				return 1
			}
			return 0
		})
		reg.Func("repl.lag", func() int64 {
			if p := rs.getPrimary(); p != nil {
				return int64(p.Lag())
			}
			return 0
		})
		reg.Func("repl.replicas", func() int64 {
			if p := rs.getPrimary(); p != nil {
				return int64(p.Replicas())
			}
			return 0
		})
		reg.Func("repl.applied", func() int64 {
			if r := rs.getReplica(); r != nil {
				return int64(r.AppliedSeq())
			}
			return 0
		})
		reg.Func("repl.connected", func() int64 {
			if r := rs.getReplica(); r != nil && r.Connected() {
				return 1
			}
			return 0
		})
		reg.Func("repl.reconnects", func() int64 {
			if r := rs.getReplica(); r != nil {
				return int64(r.Reconnects())
			}
			return 0
		})
	}

	for _, w := range s.workers {
		w := w
		reg.Func(fmt.Sprintf("sched.worker%d.queue_depth", w.id),
			func() int64 { return int64(len(w.queue)) })
	}

	// Values other subsystems already maintain are pulled lazily, under the
	// server lock, so a concurrent CRASH never hands the sampler a
	// half-replaced engine. RehashStates is a racy non-transactional peek by
	// design (observability only).
	reg.Sampler(func(emit func(name string, v int64)) {
		s.mu.RLock()
		st := s.eng.Stats()
		ast := s.eng.Arena().Stats()
		zeroing, migrating := s.store.RehashStates(s.heap)
		s.mu.RUnlock()

		var txns uint64
		for o := 0; o < ptm.NumOutcomes; o++ {
			n := st.Persistent[o]
			txns += n
			emit("core.outcomes."+ptm.Outcome(o).MetricKey(), int64(n))
		}
		emit("core.txns", int64(txns))
		emit("core.writes", int64(st.Writes))
		emit("core.user_aborts", int64(st.UserAborts))
		emit("htm.commits", int64(st.HTM.Commits))
		for c := htm.CauseConflict; int(c) < htm.NumCauses; c++ {
			emit("htm.aborts."+c.String(), int64(st.HTM.Aborts[c]))
		}
		emit("arena.live_blocks", int64(ast.Live))
		emit("arena.live_words", int64(ast.LiveWords))
		emit("arena.free_blocks", int64(ast.FreeBlocks))
		emit("arena.free_words", int64(ast.FreeWords))
		emit("arena.used_words", int64(ast.UsedWords))
		emit("arena.capacity_words", int64(ast.DataWords))
		emit("kv.rehash.zeroing_shards", int64(zeroing))
		emit("kv.rehash.migrating_shards", int64(migrating))
	})
	return m
}

// countWriter counts bytes on their way to the connection; it sits under the
// bufio.Writer, so the add happens once per flush, not once per response.
type countWriter struct {
	w      io.Writer
	c      *obs.Counter
	stripe int
}

func (cw *countWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.c.Add(cw.stripe, uint64(n))
	return n, err
}

// infoText renders the merged snapshot for the INFO wire command: a header
// with the line count, then one "name value" line per sample, so clients can
// read exactly the right number of lines without a terminator convention.
func (s *server) infoText() string {
	samples := s.obs.reg.Snapshot()
	var b strings.Builder
	fmt.Fprintf(&b, "INFO %d", len(samples))
	for _, sm := range samples {
		b.WriteByte('\n')
		b.WriteString(sm.Name)
		b.WriteByte(' ')
		fmt.Fprintf(&b, "%d", sm.Value)
	}
	return b.String()
}

// serveMetrics serves the JSON snapshot and the pprof handlers on l. The mux
// is explicit (not http.DefaultServeMux) so importing net/http/pprof's
// side-effect registrations is unnecessary and nothing else can leak onto
// this listener.
func (s *server) serveMetrics(l net.Listener) {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := s.obs.reg.WriteJSON(w); err != nil {
			log.Printf("craftykv: metrics write: %v", err)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	go func() {
		if err := http.Serve(l, mux); err != nil {
			log.Printf("craftykv: metrics listener: %v", err)
		}
	}()
}

// startMetricsLogger logs one summary line per interval until stop closes —
// the same background-goroutine pattern as the checkpointer. Rate-style
// fields are deltas against the previous snapshot; depth/latency fields are
// the current values.
func (s *server) startMetricsLogger(interval time.Duration, stop chan struct{}) {
	go func() {
		tick := time.NewTicker(interval)
		defer tick.Stop()
		prev := s.obs.reg.SnapshotMap()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				cur := s.obs.reg.SnapshotMap()
				log.Printf("craftykv: metrics %s", metricsLine(prev, cur))
				prev = cur
			}
		}
	}()
}

// metricsLine renders the periodic log line: interval deltas for the traffic
// counters, instantaneous values for gauges and quantiles.
func metricsLine(prev, cur map[string]int64) string {
	d := func(name string) int64 { return cur[name] - prev[name] }
	return fmt.Sprintf(
		"cmds=%d errs=%d txns=%d groups=%d group_aborts=%d fallbacks=%d sgl=%d syncs=%d crashes=%d conns=%d op_p99_ns=%d drain_p50=%d",
		d("conn.commands"), d("conn.protocol_errors"), d("core.txns"),
		d("kv.apply.groups"), d("kv.apply.group_aborts"), d("kv.apply.fallbacks"),
		d("core.sgl.entries"), d("sched.syncs"), d("srv.crashes"),
		cur["conn.open"], cur["sched.op_latency_ns.p99"], cur["sched.drain_batch.p50"])
}
