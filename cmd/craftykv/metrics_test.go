package main

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"crafty/internal/wire"
)

// startInstrumented is startServerCfg returning the server too, so tests can
// reach its registry and metrics listener.
func startInstrumented(t *testing.T) (*server, string) {
	t.Helper()
	srv, err := newServer(config{
		Shards:      8,
		Slots:       64,
		HeapWords:   1 << 22,
		ArenaWords:  1 << 20,
		Pool:        4,
		PersistProb: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go srv.serve(l)
	return srv, l.Addr().String()
}

// info sends INFO and parses the "INFO <n>" header plus its n "name value"
// lines into a map.
func (c *client) info(t *testing.T) map[string]int64 {
	t.Helper()
	header := c.roundTrip(t, "INFO")
	if !strings.HasPrefix(header, "INFO ") {
		t.Fatalf("INFO header: got %q", header)
	}
	n, err := strconv.Atoi(strings.TrimPrefix(header, "INFO "))
	if err != nil || n <= 0 {
		t.Fatalf("INFO count: %q (%v)", header, err)
	}
	m := make(map[string]int64, n)
	for i := 0; i < n; i++ {
		line, err := c.r.ReadString('\n')
		if err != nil {
			t.Fatalf("metric line %d/%d: %v", i, n, err)
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("metric line %d: %q", i, line)
		}
		v, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			t.Fatalf("metric line %d: %q: %v", i, line, err)
		}
		m[fields[0]] = v
	}
	return m
}

// TestInfoOverTCP drives pipelined load over the wire, then checks the INFO
// snapshot reports it: nonzero engine outcome totals, scheduler queue/drain
// and latency stats, and traffic counters — and that the counters survive an
// injected crash (the recovered engine and store re-adopt the startup
// metrics blocks).
func TestInfoOverTCP(t *testing.T) {
	_, addr := startInstrumented(t)
	c := dial(t, addr)

	// One pipelined burst of writes (all requests before any reply read),
	// then reads, then a SYNC so everything committed is visible.
	const n = 64
	var b strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "PUT key-%03d value-%03d\n", i, i)
	}
	if _, err := c.conn.Write([]byte(b.String())); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		line, err := c.r.ReadString('\n')
		if err != nil {
			t.Fatalf("PUT reply %d: %v", i, err)
		}
		if strings.TrimRight(line, "\r\n") != "OK" {
			t.Fatalf("PUT reply %d: %q", i, line)
		}
	}
	for i := 0; i < n; i++ {
		c.expect(t, fmt.Sprintf("GET key-%03d", i), fmt.Sprintf("VAL value-%03d", i))
	}
	c.expect(t, "SYNC", "OK")

	m := c.info(t)
	positive := []string{
		"core.txns",       // engine outcome counters, summed
		"htm.commits",     // hardware commits behind them
		"kv.apply.groups", // scheduler group commits
		"conn.commands",   // wire traffic
		"conn.bytes_in",
		"conn.bytes_out",
		"sched.op_latency_ns.count", // enqueue→reply latency histogram
		"sched.drain_batch.count",   // drained batch size histogram
		"sched.syncs",
		"nvm.fences", // persist traffic under the committed writes
	}
	for _, name := range positive {
		v, ok := m[name]
		if !ok {
			t.Errorf("INFO snapshot is missing %q", name)
		} else if v <= 0 {
			t.Errorf("%s = %d, want > 0 after load", name, v)
		}
	}
	// Per-outcome counters must be present and account for every committed
	// transaction.
	var outcomes int64
	for name, v := range m {
		if strings.HasPrefix(name, "core.outcomes.") {
			outcomes += v
		}
	}
	if outcomes != m["core.txns"] {
		t.Errorf("outcome counters sum to %d, core.txns = %d", outcomes, m["core.txns"])
	}
	if _, ok := m["sched.worker0.queue_depth"]; !ok {
		t.Error("INFO snapshot is missing per-worker queue depth gauges")
	}

	// Crash and recover; the totals must carry across the engine/store
	// replacement instead of resetting.
	groupsBefore := m["kv.apply.groups"]
	if got := c.roundTrip(t, "CRASH"); !strings.HasPrefix(got, "OK ") {
		t.Fatalf("CRASH: %q", got)
	}
	c.expect(t, "PUT post-crash value", "OK")
	m2 := c.info(t)
	if m2["srv.crashes"] != 1 {
		t.Errorf("srv.crashes = %d after one CRASH", m2["srv.crashes"])
	}
	if m2["srv.recovery_ns.count"] != 1 {
		t.Errorf("srv.recovery_ns.count = %d after one CRASH", m2["srv.recovery_ns.count"])
	}
	if m2["kv.apply.groups"] < groupsBefore {
		t.Errorf("kv.apply.groups fell from %d to %d across the crash; AdoptMetrics lost the totals",
			groupsBefore, m2["kv.apply.groups"])
	}
}

// infoBin sends INFO over a binary connection and parses the TText reply —
// the same "INFO <n>" header plus n "name value" lines the text protocol
// carries, in one frame.
func (c *binClient) info(t *testing.T) map[string]int64 {
	t.Helper()
	c.enc.Request0(wire.TInfo)
	typ, payload := c.next(t)
	if typ != wire.TText {
		t.Fatalf("INFO reply: got %v, want TText", typ)
	}
	lines := strings.Split(string(payload), "\n")
	n, err := strconv.Atoi(strings.TrimPrefix(lines[0], "INFO "))
	if err != nil || n != len(lines)-1 {
		t.Fatalf("INFO header %q over %d lines (%v)", lines[0], len(lines)-1, err)
	}
	m := make(map[string]int64, n)
	for _, line := range lines[1:] {
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("metric line %q", line)
		}
		v, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			t.Fatalf("metric line %q: %v", line, err)
		}
		m[fields[0]] = v
	}
	return m
}

// TestMetricsHTTP serves the -metrics listener and checks the three
// observation surfaces agree: /metrics returns the same snapshot as INFO as
// flat JSON, and INFO over the binary protocol reports exactly the same key
// set as INFO over text (including the per-protocol wire.* counters, which
// exist in both and move only under binary traffic).
func TestMetricsHTTP(t *testing.T) {
	srv, addr := startInstrumented(t)
	ml, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ml.Close() })
	srv.serveMetrics(ml)

	c := dial(t, addr)
	c.expect(t, "PUT web-key web-value", "OK")
	c.expect(t, "GET web-key", "VAL web-value")
	textInfo := c.info(t)

	resp, err := http.Get("http://" + ml.Addr().String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var snap map[string]int64
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("decoding /metrics: %v", err)
	}
	// Same key set as the INFO snapshot; values may differ (time passed
	// between the two snapshots) but plain monotonic counters can only grow
	// (gauges and histogram quantiles may move either way).
	monotonic := map[string]bool{
		"conn.total": true, "conn.commands": true, "conn.bytes_in": true,
		"conn.bytes_out": true, "core.txns": true, "htm.commits": true,
	}
	for name, v := range textInfo {
		got, ok := snap[name]
		if !ok {
			t.Errorf("/metrics is missing %q (present in INFO)", name)
			continue
		}
		if monotonic[name] && got < v {
			t.Errorf("%s shrank from %d (INFO) to %d (/metrics)", name, v, got)
		}
	}
	if len(snap) < len(textInfo) {
		t.Errorf("/metrics has %d samples, INFO had %d", len(snap), len(textInfo))
	}
	if snap["core.txns"] <= 0 {
		t.Errorf("core.txns = %d over HTTP, want > 0", snap["core.txns"])
	}

	// The text snapshot carries the binary path's counters (registered
	// unconditionally), idle so far.
	for _, name := range []string{"wire.frames", "wire.bytes", "wire.protocol_errors"} {
		if _, ok := textInfo[name]; !ok {
			t.Errorf("INFO over text is missing %q", name)
		}
	}

	// INFO over the binary protocol: drive some frames first so the wire.*
	// counters move, then compare key sets both ways.
	bc := dialBin(t, addr, wire.Version)
	bc.enc.Put([]byte("bin-key"), []byte("bin-value"))
	bc.expect(t, wire.TOK, "")
	bc.enc.Get([]byte("bin-key"))
	bc.expect(t, wire.TVal, "bin-value")
	binInfo := bc.info(t)
	for name := range textInfo {
		if _, ok := binInfo[name]; !ok {
			t.Errorf("INFO over binary is missing %q (present over text)", name)
		}
	}
	for name := range binInfo {
		if _, ok := textInfo[name]; !ok {
			t.Errorf("INFO over text is missing %q (present over binary)", name)
		}
	}
	if binInfo["wire.frames"] <= 0 {
		t.Errorf("wire.frames = %d after binary traffic, want > 0", binInfo["wire.frames"])
	}
	if binInfo["wire.bytes"] <= 0 {
		t.Errorf("wire.bytes = %d after binary traffic, want > 0", binInfo["wire.bytes"])
	}
}
