// Wire protocol bench smoke: many pipelined connections driving the same
// logical read-heavy workload over the binary protocol and over the text
// protocol, emitting a JSON artifact with ops/s and allocs/op per protocol
// and the binary/text speedup. Gated on WIRE_SMOKE=1 (CI runs it and keeps
// the artifact so framing-layer regressions are visible across runs);
// BENCH_WIRE_OUT names the output file, default BENCH_wire.json.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"crafty/internal/wire"
)

type wireProtoResult struct {
	Ops         int     `json:"ops"`
	ElapsedSec  float64 `json:"elapsed_sec"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

type wireBenchResult struct {
	Conns      int `json:"conns"`
	Depth      int `json:"batch"`
	ValueBytes int `json:"value_bytes"`

	// Text: the batch is `depth` pipelined single-key GET lines per flush.
	// Binary: the batch is one multi-op TMGet frame carrying `depth` keys.
	// BinaryPipelined: `depth` single TGet frames per flush — the
	// like-for-like twin of the text driver, isolating pure framing cost.
	Text            wireProtoResult `json:"text"`
	Binary          wireProtoResult `json:"binary"`
	BinaryPipelined wireProtoResult `json:"binary_pipelined"`

	Speedup float64 `json:"binary_over_text_ops"`
}

// Each driver runs the same logical workload — `batches` rounds of `depth`
// single-key GETs over a per-connection key range, one round trip per round —
// in its protocol's natural batch encoding. GETs are the protocol-bound case
// (a GET is one engine lookup; a PUT is a full durable transaction that
// drowns framing costs), and all drivers are allocation-lean so the
// comparison measures the protocols, not sloppy clients. The binary batched
// driver is the framing the protocol exists for: one frame = one scheduler
// request = one Store.Apply group for all `depth` ops, where the text driver
// pays the per-request scheduler machinery `depth` times per round trip.
func dialBinBench(addr string) (net.Conn, *wire.Encoder, *wire.Reader, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, nil, nil, err
	}
	w := bufio.NewWriter(conn)
	enc := wire.NewEncoder(w)
	if err := enc.Handshake(wire.Version); err != nil {
		return nil, nil, nil, err
	}
	if err := enc.Flush(); err != nil {
		return nil, nil, nil, err
	}
	br := bufio.NewReader(conn)
	var hs [wire.HandshakeLen]byte
	if _, err := io.ReadFull(br, hs[:]); err != nil {
		return nil, nil, nil, err
	}
	if _, err := wire.ParseHandshake(hs[:]); err != nil {
		return nil, nil, nil, err
	}
	return conn, enc, wire.NewReader(br, 0), nil
}

func benchKeys(id, depth int) [][]byte {
	keys := make([][]byte, depth)
	for i := range keys {
		keys[i] = fmt.Appendf(nil, "bench-%03d-%04d", id, i)
	}
	return keys
}

func wireBenchConnBinary(addr string, id, batches, depth int, batched bool) error {
	conn, enc, rd, err := dialBinBench(addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	keys := benchKeys(id, depth)
	for b := 0; b < batches; b++ {
		if batched {
			enc.MGet(keys)
		} else {
			for i := 0; i < depth; i++ {
				enc.Get(keys[i])
			}
		}
		if err := enc.Flush(); err != nil {
			return err
		}
		for i := 0; i < depth; i++ {
			typ, _, err := rd.Next()
			if err != nil {
				return err
			}
			if typ != wire.TVal {
				return fmt.Errorf("conn %d batch %d: reply %v, want TVal", id, b, typ)
			}
		}
	}
	return nil
}

func wireBenchConnText(addr string, id, batches, depth int) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	w := bufio.NewWriter(conn)
	br := bufio.NewReaderSize(conn, 1<<16)
	keys := benchKeys(id, depth)
	for b := 0; b < batches; b++ {
		for i := 0; i < depth; i++ {
			w.WriteString("GET ")
			w.Write(keys[i])
			w.WriteByte('\n')
		}
		if err := w.Flush(); err != nil {
			return err
		}
		for i := 0; i < depth; i++ {
			line, err := br.ReadSlice('\n')
			if err != nil {
				return err
			}
			if !bytes.HasPrefix(line, []byte("VAL ")) {
				return fmt.Errorf("conn %d batch %d: %q, want VAL", id, b, line)
			}
		}
	}
	return nil
}

// wirePopulate PUTs every key all drivers will GET, over one pipelined text
// connection, off the clock.
func wirePopulate(addr string, conns, depth int, value []byte) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	w := bufio.NewWriter(conn)
	br := bufio.NewReaderSize(conn, 1<<16)
	for id := 0; id < conns; id++ {
		for _, key := range benchKeys(id, depth) {
			w.WriteString("PUT ")
			w.Write(key)
			w.WriteByte(' ')
			w.Write(value)
			w.WriteByte('\n')
		}
		if err := w.Flush(); err != nil {
			return err
		}
		for i := 0; i < depth; i++ {
			line, err := br.ReadSlice('\n')
			if err != nil {
				return err
			}
			if !bytes.HasPrefix(line, []byte("OK")) {
				return fmt.Errorf("populate: %q", line)
			}
		}
	}
	return nil
}

type wireBenchMode int

const (
	benchText wireBenchMode = iota
	benchBinary
	benchBinaryPipelined
)

func runWireBench(t *testing.T, mode wireBenchMode, conns, batches, depth int, value []byte) wireProtoResult {
	t.Helper()
	addr := startServer(t)
	if err := wirePopulate(addr, conns, depth, value); err != nil {
		t.Fatal(err)
	}
	drive := func(id int) error {
		switch mode {
		case benchText:
			return wireBenchConnText(addr, id, batches, depth)
		case benchBinary:
			return wireBenchConnBinary(addr, id, batches, depth, true)
		default:
			return wireBenchConnBinary(addr, id, batches, depth, false)
		}
	}
	// Warm the server's pools and the connection path off the clock.
	if err := drive(0); err != nil {
		t.Fatal(err)
	}

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, conns)
	for id := 0; id < conns; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			if err := drive(id); err != nil {
				errs <- err
			}
		}(id)
	}
	wg.Wait()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	ops := conns * batches * depth
	return wireProtoResult{
		Ops:         ops,
		ElapsedSec:  elapsed.Seconds(),
		OpsPerSec:   float64(ops) / elapsed.Seconds(),
		AllocsPerOp: float64(after.Mallocs-before.Mallocs) / float64(ops),
	}
}

func TestWireBenchSmoke(t *testing.T) {
	if os.Getenv("WIRE_SMOKE") == "" {
		t.Skip("set WIRE_SMOKE=1 to run the wire bench smoke")
	}

	const (
		conns   = 128
		depth   = 16
		valueSz = 16
	)
	batches := 256
	if s := os.Getenv("WIRE_BENCH_BATCHES"); s != "" {
		fmt.Sscanf(s, "%d", &batches)
	}
	value := bytes.Repeat([]byte("v"), valueSz)

	// Each mode gets a fresh server so store sizes and pool warmth are
	// symmetric.
	text := runWireBench(t, benchText, conns, batches, depth, value)
	bin := runWireBench(t, benchBinary, conns, batches, depth, value)
	binPipe := runWireBench(t, benchBinaryPipelined, conns, batches, depth, value)

	res := wireBenchResult{
		Conns:           conns,
		Depth:           depth,
		ValueBytes:      valueSz,
		Text:            text,
		Binary:          bin,
		BinaryPipelined: binPipe,
		Speedup:         bin.OpsPerSec / text.OpsPerSec,
	}
	out, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("wire bench: %s", out)
	path := os.Getenv("BENCH_WIRE_OUT")
	if path == "" {
		path = "BENCH_wire.json"
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
