package main

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
)

// startServer brings a small server up on an ephemeral port.
func startServer(t *testing.T) string {
	t.Helper()
	srv, err := newServer(config{
		Shards:      8,
		Slots:       64,
		HeapWords:   1 << 22,
		ArenaWords:  1 << 20,
		Pool:        4,
		PersistProb: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go srv.serve(l)
	return l.Addr().String()
}

// client is a line-oriented test client.
type client struct {
	conn net.Conn
	r    *bufio.Reader
}

func dial(t *testing.T, addr string) *client {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return &client{conn: conn, r: bufio.NewReader(conn)}
}

func (c *client) roundTrip(t *testing.T, req string) string {
	t.Helper()
	if _, err := fmt.Fprintf(c.conn, "%s\n", req); err != nil {
		t.Fatalf("%s: %v", req, err)
	}
	line, err := c.r.ReadString('\n')
	if err != nil {
		t.Fatalf("%s: reading reply: %v", req, err)
	}
	return strings.TrimRight(line, "\r\n")
}

func (c *client) expect(t *testing.T, req, want string) {
	t.Helper()
	if got := c.roundTrip(t, req); got != want {
		t.Fatalf("%s: got %q, want %q", req, got, want)
	}
}

func TestProtocolBasics(t *testing.T) {
	addr := startServer(t)
	c := dial(t, addr)
	c.expect(t, "GET nothing", "NIL")
	c.expect(t, "PUT greeting hello", "OK")
	c.expect(t, "GET greeting", "VAL hello")
	c.expect(t, "PUT greeting goodbye", "OK")
	c.expect(t, "GET greeting", "VAL goodbye")
	c.expect(t, "LEN", "LEN 1")
	c.expect(t, "DEL greeting", "OK")
	c.expect(t, "DEL greeting", "NIL")
	c.expect(t, "GET greeting", "NIL")
	c.expect(t, "BOGUS", `ERR unknown command "BOGUS"`)
	c.expect(t, "PUT justakey", "ERR usage: PUT <key> <value>")
	c.expect(t, "QUIT", "BYE")
}

// readLine reads one reply line without sending anything.
func (c *client) readLine(t *testing.T) string {
	t.Helper()
	line, err := c.r.ReadString('\n')
	if err != nil {
		t.Fatalf("reading reply: %v", err)
	}
	return strings.TrimRight(line, "\r\n")
}

// expectLines asserts the next replies, in order.
func (c *client) expectLines(t *testing.T, want ...string) {
	t.Helper()
	for _, w := range want {
		if got := c.readLine(t); got != w {
			t.Fatalf("got %q, want %q", got, w)
		}
	}
}

func TestMGET(t *testing.T) {
	addr := startServer(t)
	c := dial(t, addr)
	c.expect(t, "PUT alpha one", "OK")
	c.expect(t, "PUT beta two", "OK")
	c.expect(t, "MGET", "ERR usage: MGET <key> [<key> ...]")
	c.expect(t, "MGET ", "ERR usage: MGET <key> [<key> ...]")
	if _, err := fmt.Fprintf(c.conn, "MGET alpha missing beta alpha\n"); err != nil {
		t.Fatal(err)
	}
	c.expectLines(t, "VAL one", "NIL", "VAL two", "VAL one")
	// The connection stays usable for ordinary commands afterwards.
	c.expect(t, "GET beta", "VAL two")
}

// TestPipelinedBurst sends a batch of commands in a single write and checks
// every response arrives, in order — the server flushes its per-connection
// buffered writer only once the request burst is drained.
func TestPipelinedBurst(t *testing.T) {
	addr := startServer(t)
	c := dial(t, addr)
	burst := "PUT k1 v1\nPUT k2 v2\nGET k1\nMGET k1 k2 nope\nLEN\nGET nope\n"
	if _, err := c.conn.Write([]byte(burst)); err != nil {
		t.Fatal(err)
	}
	c.expectLines(t,
		"OK", "OK",
		"VAL v1",
		"VAL v1", "VAL v2", "NIL",
		"LEN 2",
		"NIL",
	)
}

// TestOverlongLineRejected proves a newline-free stream cannot grow one
// request line without bound: the server errors out and drops the
// connection once the line exceeds the reader buffer.
func TestOverlongLineRejected(t *testing.T) {
	addr := startServer(t)
	c := dial(t, addr)
	if _, err := c.conn.Write([]byte(strings.Repeat("a", 1<<20+512))); err != nil {
		t.Fatal(err)
	}
	if got := c.readLine(t); got != "ERR request line too long" {
		t.Fatalf("got %q, want the too-long error", got)
	}
	if _, err := c.r.ReadString('\n'); err == nil {
		t.Fatal("connection still open after over-long line")
	}
}

// TestConcurrentClients exercises several connections writing and reading
// disjoint key ranges at once.
func TestConcurrentClients(t *testing.T) {
	addr := startServer(t)
	const clients = 6
	const keys = 40
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				errCh <- err
				return
			}
			defer conn.Close()
			r := bufio.NewReader(conn)
			ask := func(req string) (string, error) {
				if _, err := fmt.Fprintf(conn, "%s\n", req); err != nil {
					return "", err
				}
				line, err := r.ReadString('\n')
				return strings.TrimRight(line, "\r\n"), err
			}
			for i := 0; i < keys; i++ {
				if got, err := ask(fmt.Sprintf("PUT c%d-k%d v%d-%d", g, i, g, i)); err != nil || got != "OK" {
					errCh <- fmt.Errorf("client %d put %d: %q %v", g, i, got, err)
					return
				}
			}
			for i := 0; i < keys; i++ {
				want := fmt.Sprintf("VAL v%d-%d", g, i)
				if got, err := ask(fmt.Sprintf("GET c%d-k%d", g, i)); err != nil || got != want {
					errCh <- fmt.Errorf("client %d get %d: %q %v", g, i, got, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	c := dial(t, addr)
	c.expect(t, "LEN", fmt.Sprintf("LEN %d", clients*keys))
}

// TestSurvivesRestart is the server's acceptance check: data written and
// synced before an injected power failure is served intact afterwards, and
// the restarted server keeps accepting writes. SYNC models the group fsync a
// durable store performs before acknowledging a barrier; without it,
// recently committed transactions may legitimately roll back whole (the
// engine's buffered-durability contract), which TestCrashRollsBackWhole
// checks separately.
func TestSurvivesRestart(t *testing.T) {
	addr := startServer(t)
	c := dial(t, addr)
	const keys = 80
	for i := 0; i < keys; i++ {
		c.expect(t, fmt.Sprintf("PUT stable-%d value-%d", i, i), "OK")
	}
	c.expect(t, "SYNC", "OK")

	reply := c.roundTrip(t, "CRASH")
	if !strings.HasPrefix(reply, "OK ") {
		t.Fatalf("CRASH: %q", reply)
	}
	t.Logf("first crash: %s", reply)

	// Same connection, new engine incarnation behind it: all synced data
	// must be intact.
	for i := 0; i < keys; i++ {
		c.expect(t, fmt.Sprintf("GET stable-%d", i), fmt.Sprintf("VAL value-%d", i))
	}
	c.expect(t, "LEN", fmt.Sprintf("LEN %d", keys))

	// The restarted server must keep serving writes, and survive a second
	// crash the same way.
	for i := 0; i < keys; i++ {
		c.expect(t, fmt.Sprintf("PUT round2-%d v2-%d", i, i), "OK")
	}
	c.expect(t, "SYNC", "OK")
	if reply := c.roundTrip(t, "CRASH"); !strings.HasPrefix(reply, "OK ") {
		t.Fatalf("second CRASH: %q", reply)
	}
	for i := 0; i < keys; i++ {
		c.expect(t, fmt.Sprintf("GET stable-%d", i), fmt.Sprintf("VAL value-%d", i))
		c.expect(t, fmt.Sprintf("GET round2-%d", i), fmt.Sprintf("VAL v2-%d", i))
	}
}

// TestCrashRollsBackWhole drives unsynced writes into a crash and checks the
// weaker—but still atomic—guarantee: every key is either at a committed
// value or absent, never torn, and the index still verifies (the CRASH reply
// carries the verified entry count).
func TestCrashRollsBackWhole(t *testing.T) {
	addr := startServer(t)
	c := dial(t, addr)
	const keys = 60
	for i := 0; i < keys; i++ {
		c.expect(t, fmt.Sprintf("PUT k%d first-%d", i, i), "OK")
	}
	for i := 0; i < keys; i++ {
		c.expect(t, fmt.Sprintf("PUT k%d second-%d", i, i), "OK")
	}
	reply := c.roundTrip(t, "CRASH")
	if !strings.HasPrefix(reply, "OK ") {
		t.Fatalf("CRASH: %q", reply)
	}
	for i := 0; i < keys; i++ {
		got := c.roundTrip(t, fmt.Sprintf("GET k%d", i))
		first := fmt.Sprintf("VAL first-%d", i)
		second := fmt.Sprintf("VAL second-%d", i)
		if got != first && got != second && got != "NIL" {
			t.Fatalf("key k%d torn after crash: %q", i, got)
		}
	}
}

// statsField extracts one numeric field from a STATS reply.
func statsField(t *testing.T, reply, field string) int {
	t.Helper()
	for _, tok := range strings.Fields(reply)[1:] {
		k, v, ok := strings.Cut(tok, "=")
		if !ok {
			t.Fatalf("malformed STATS token %q in %q", tok, reply)
		}
		if k == field {
			var n int
			if _, err := fmt.Sscanf(v, "%d", &n); err != nil {
				t.Fatalf("STATS %s=%q: %v", field, v, err)
			}
			return n
		}
	}
	t.Fatalf("STATS reply %q missing field %q", reply, field)
	return 0
}

// TestStatsLeakFreeAcrossCrash drives churn with deletes, crashes, and
// checks the arena occupancy the server reports: live + free must always
// account for every used word (leaked_words=0), and the high-water mark must
// not grow across the crash/recovery cycle — the store reclaims blocks that
// were free at the power failure.
func TestStatsLeakFreeAcrossCrash(t *testing.T) {
	addr := startServer(t)
	c := dial(t, addr)
	for i := 0; i < 60; i++ {
		c.expect(t, fmt.Sprintf("PUT key%02d value-%02d-abcdefghijklmnop", i, i), "OK")
	}
	for i := 0; i < 60; i += 2 {
		c.expect(t, fmt.Sprintf("DEL key%02d", i), "OK")
	}
	// Make the churn rollback-proof so the post-crash state is exactly this
	// one (a rolled-back delete would turn a later re-insert into an update,
	// whose transient double block would muddy the strict no-growth check).
	c.expect(t, "SYNC", "OK")
	before := c.roundTrip(t, "STATS")
	if leaked := statsField(t, before, "leaked_words"); leaked != 0 {
		t.Fatalf("leaked %d words before crash: %s", leaked, before)
	}
	usedBefore := statsField(t, before, "used_words")
	if free := statsField(t, before, "free_words"); free == 0 {
		t.Fatalf("expected free words after deletes: %s", before)
	}

	if reply := c.roundTrip(t, "CRASH"); !strings.HasPrefix(reply, "OK ") {
		t.Fatalf("CRASH: %q", reply)
	}
	after := c.roundTrip(t, "STATS")
	if leaked := statsField(t, after, "leaked_words"); leaked != 0 {
		t.Fatalf("leaked %d words across recovery: %s", leaked, after)
	}
	if usedAfter := statsField(t, after, "used_words"); usedAfter > usedBefore {
		t.Fatalf("arena grew across crash: used %d -> %d", usedBefore, usedAfter)
	}
	// Re-inserting the deleted keys is served from reclaimed space without
	// growing the arena. (Updates of live keys would transiently hold two
	// blocks — the new one is allocated before the commit-deferred free — so
	// the strict no-growth check uses pure inserts.)
	for i := 0; i < 60; i += 2 {
		c.expect(t, fmt.Sprintf("PUT key%02d value-%02d-abcdefghijklmnop", i, i), "OK")
	}
	final := c.roundTrip(t, "STATS")
	if leaked := statsField(t, final, "leaked_words"); leaked != 0 {
		t.Fatalf("leaked %d words after rewrite: %s", leaked, final)
	}
	if usedFinal := statsField(t, final, "used_words"); usedFinal > usedBefore {
		t.Fatalf("arena grew refilling reclaimed space: used %d -> %d", usedBefore, usedFinal)
	}
}
