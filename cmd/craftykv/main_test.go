package main

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// startServer brings a small server up on an ephemeral port.
func startServer(t *testing.T) string {
	return startServerPersist(t, 0.5)
}

// startServerPersist is startServer with an explicit probability that an
// unfenced word survives an injected crash (0 = worst case: everything not
// properly fenced dies).
func startServerPersist(t *testing.T, persistProb float64) string {
	t.Helper()
	return startServerCfg(t, config{
		Shards:      8,
		Slots:       64,
		HeapWords:   1 << 22,
		ArenaWords:  1 << 20,
		Pool:        4,
		PersistProb: persistProb,
	})
}

func startServerCfg(t *testing.T, cfg config) string {
	t.Helper()
	srv, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go srv.serve(l)
	return l.Addr().String()
}

// TestPoolValidatedAtStartup checks a pool larger than the engine's thread
// capacity (Config.MaxThreads, default 64) fails at newServer with a clean
// error instead of panicking at the first over-limit thread registration.
func TestPoolValidatedAtStartup(t *testing.T) {
	_, err := newServer(config{
		Shards:      8,
		Slots:       64,
		HeapWords:   1 << 23,
		ArenaWords:  1 << 20,
		Pool:        65,
		PersistProb: 0.5,
	})
	if err == nil {
		t.Fatal("newServer accepted -pool 65 over a 64-thread engine")
	}
	if !strings.Contains(err.Error(), "-pool 65") || !strings.Contains(err.Error(), "64") {
		t.Fatalf("unhelpful validation error: %v", err)
	}
}

// client is a line-oriented test client.
type client struct {
	conn net.Conn
	r    *bufio.Reader
}

func dial(t *testing.T, addr string) *client {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return &client{conn: conn, r: bufio.NewReader(conn)}
}

func (c *client) roundTrip(t *testing.T, req string) string {
	t.Helper()
	if _, err := fmt.Fprintf(c.conn, "%s\n", req); err != nil {
		t.Fatalf("%s: %v", req, err)
	}
	line, err := c.r.ReadString('\n')
	if err != nil {
		t.Fatalf("%s: reading reply: %v", req, err)
	}
	return strings.TrimRight(line, "\r\n")
}

func (c *client) expect(t *testing.T, req, want string) {
	t.Helper()
	if got := c.roundTrip(t, req); got != want {
		t.Fatalf("%s: got %q, want %q", req, got, want)
	}
}

func TestProtocolBasics(t *testing.T) {
	addr := startServer(t)
	c := dial(t, addr)
	c.expect(t, "GET nothing", "NIL")
	c.expect(t, "PUT greeting hello", "OK")
	c.expect(t, "GET greeting", "VAL hello")
	c.expect(t, "PUT greeting goodbye", "OK")
	c.expect(t, "GET greeting", "VAL goodbye")
	c.expect(t, "LEN", "LEN 1")
	c.expect(t, "DEL greeting", "OK")
	c.expect(t, "DEL greeting", "NIL")
	c.expect(t, "GET greeting", "NIL")
	c.expect(t, "BOGUS", `ERR unknown command "BOGUS"`)
	c.expect(t, "PUT justakey", "ERR usage: PUT <key> <value>")
	c.expect(t, "QUIT", "BYE")
}

// readLine reads one reply line without sending anything.
func (c *client) readLine(t *testing.T) string {
	t.Helper()
	line, err := c.r.ReadString('\n')
	if err != nil {
		t.Fatalf("reading reply: %v", err)
	}
	return strings.TrimRight(line, "\r\n")
}

// expectLines asserts the next replies, in order.
func (c *client) expectLines(t *testing.T, want ...string) {
	t.Helper()
	for _, w := range want {
		if got := c.readLine(t); got != w {
			t.Fatalf("got %q, want %q", got, w)
		}
	}
}

func TestMGET(t *testing.T) {
	addr := startServer(t)
	c := dial(t, addr)
	c.expect(t, "PUT alpha one", "OK")
	c.expect(t, "PUT beta two", "OK")
	c.expect(t, "MGET", "ERR usage: MGET <key> [<key> ...]")
	c.expect(t, "MGET ", "ERR usage: MGET <key> [<key> ...]")
	if _, err := fmt.Fprintf(c.conn, "MGET alpha missing beta alpha\n"); err != nil {
		t.Fatal(err)
	}
	c.expectLines(t, "VAL one", "NIL", "VAL two", "VAL one")
	// The connection stays usable for ordinary commands afterwards.
	c.expect(t, "GET beta", "VAL two")
}

func TestMPutMDel(t *testing.T) {
	addr := startServer(t)
	c := dial(t, addr)
	c.expect(t, "MPUT", "ERR usage: MPUT <key> <value> [<key> <value> ...]")
	c.expect(t, "MPUT lonelykey", "ERR usage: MPUT <key> <value> [<key> <value> ...]")
	c.expect(t, "MPUT a 1 b 2 c 3", "OK 3")
	if _, err := fmt.Fprintf(c.conn, "MGET a b c nope\n"); err != nil {
		t.Fatal(err)
	}
	c.expectLines(t, "VAL 1", "VAL 2", "VAL 3", "NIL")
	// MPUT updates in place; later pairs win over earlier ones in the batch.
	c.expect(t, "MPUT a 10 a 11", "OK 2")
	c.expect(t, "GET a", "VAL 11")
	c.expect(t, "MDEL", "ERR usage: MDEL <key> [<key> ...]")
	if _, err := fmt.Fprintf(c.conn, "MDEL a nope b\n"); err != nil {
		t.Fatal(err)
	}
	c.expectLines(t, "OK", "NIL", "OK")
	c.expect(t, "GET a", "NIL")
	c.expect(t, "GET c", "VAL 3")
	c.expect(t, "LEN", "LEN 1")
}

// TestManyConnectionsCoalesce drives concurrent writers through the
// scheduler (many connections' mutations coalescing into group commits) and
// checks nothing is lost or misrouted.
func TestManyConnectionsCoalesce(t *testing.T) {
	addr := startServer(t)
	const clients = 8
	const keys = 50
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				errCh <- err
				return
			}
			defer conn.Close()
			r := bufio.NewReader(conn)
			// Pipeline every PUT in one burst, then read all responses.
			var burst strings.Builder
			for i := 0; i < keys; i++ {
				fmt.Fprintf(&burst, "PUT c%d-k%d v%d-%d\n", g, i, g, i)
			}
			if _, err := conn.Write([]byte(burst.String())); err != nil {
				errCh <- err
				return
			}
			for i := 0; i < keys; i++ {
				line, err := r.ReadString('\n')
				if err != nil || strings.TrimSpace(line) != "OK" {
					errCh <- fmt.Errorf("client %d put %d: %q %v", g, i, line, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	c := dial(t, addr)
	c.expect(t, "LEN", fmt.Sprintf("LEN %d", clients*keys))
	for g := 0; g < clients; g++ {
		for i := 0; i < keys; i += 7 {
			c.expect(t, fmt.Sprintf("GET c%d-k%d", g, i), fmt.Sprintf("VAL v%d-%d", g, i))
		}
	}
}

// TestSyncCompletesDuringSlowBatch is the scheduler-barrier regression test:
// while one connection streams a long pipelined write burst (kept in flight
// by not reading its responses), SYNC on another connection must complete —
// the barrier rides the worker queues behind whatever is already enqueued
// instead of draining a thread pool.
func TestSyncCompletesDuringSlowBatch(t *testing.T) {
	addr := startServer(t)

	slow, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer slow.Close()
	const slowOps = 3000
	go func() {
		var burst strings.Builder
		for i := 0; i < slowOps; i++ {
			fmt.Fprintf(&burst, "PUT slow-%d v%d\n", i, i)
		}
		slow.Write([]byte(burst.String()))
	}()

	c := dial(t, addr)
	c.expect(t, "PUT mine v", "OK")
	done := make(chan string, 1)
	go func() { done <- c.roundTrip(t, "SYNC") }()
	select {
	case got := <-done:
		if got != "OK" {
			t.Fatalf("SYNC: %q", got)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("SYNC did not complete while another connection's batch was in flight")
	}

	// Drain the slow connection: every write must have been acknowledged.
	r := bufio.NewReader(slow)
	for i := 0; i < slowOps; i++ {
		line, err := r.ReadString('\n')
		if err != nil || strings.TrimSpace(line) != "OK" {
			t.Fatalf("slow put %d: %q %v", i, line, err)
		}
	}
}

// TestPipelinedBurst sends a batch of commands in a single write and checks
// every response arrives, in order — the server flushes its per-connection
// buffered writer only once the request burst is drained.
func TestPipelinedBurst(t *testing.T) {
	addr := startServer(t)
	c := dial(t, addr)
	burst := "PUT k1 v1\nPUT k2 v2\nGET k1\nMGET k1 k2 nope\nLEN\nGET nope\n"
	if _, err := c.conn.Write([]byte(burst)); err != nil {
		t.Fatal(err)
	}
	c.expectLines(t,
		"OK", "OK",
		"VAL v1",
		"VAL v1", "VAL v2", "NIL",
		"LEN 2",
		"NIL",
	)
}

// TestOverlongLineRejected proves a newline-free stream cannot grow one
// request line without bound: the server answers with the typed frame-size
// refusal, drains the oversized line, and keeps serving the connection.
func TestOverlongLineRejected(t *testing.T) {
	addr := startServer(t)
	c := dial(t, addr)
	if _, err := c.conn.Write([]byte(strings.Repeat("a", 1<<20+512) + "\n")); err != nil {
		t.Fatal(err)
	}
	if got := c.readLine(t); got != "ERR frame too large 1048576" {
		t.Fatalf("got %q, want the frame-too-large error", got)
	}
	// The connection survives the mistake: the next request works.
	c.expect(t, "PUT survivor v", "OK")
	c.expect(t, "GET survivor", "VAL v")
}

// TestConcurrentClients exercises several connections writing and reading
// disjoint key ranges at once.
func TestConcurrentClients(t *testing.T) {
	addr := startServer(t)
	const clients = 6
	const keys = 40
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				errCh <- err
				return
			}
			defer conn.Close()
			r := bufio.NewReader(conn)
			ask := func(req string) (string, error) {
				if _, err := fmt.Fprintf(conn, "%s\n", req); err != nil {
					return "", err
				}
				line, err := r.ReadString('\n')
				return strings.TrimRight(line, "\r\n"), err
			}
			for i := 0; i < keys; i++ {
				if got, err := ask(fmt.Sprintf("PUT c%d-k%d v%d-%d", g, i, g, i)); err != nil || got != "OK" {
					errCh <- fmt.Errorf("client %d put %d: %q %v", g, i, got, err)
					return
				}
			}
			for i := 0; i < keys; i++ {
				want := fmt.Sprintf("VAL v%d-%d", g, i)
				if got, err := ask(fmt.Sprintf("GET c%d-k%d", g, i)); err != nil || got != want {
					errCh <- fmt.Errorf("client %d get %d: %q %v", g, i, got, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	c := dial(t, addr)
	c.expect(t, "LEN", fmt.Sprintf("LEN %d", clients*keys))
}

// TestSurvivesRestart is the server's acceptance check: data written and
// synced before an injected power failure is served intact afterwards, and
// the restarted server keeps accepting writes. SYNC models the group fsync a
// durable store performs before acknowledging a barrier; without it,
// recently committed transactions may legitimately roll back whole (the
// engine's buffered-durability contract), which TestCrashRollsBackWhole
// checks separately.
func TestSurvivesRestart(t *testing.T) {
	addr := startServer(t)
	c := dial(t, addr)
	const keys = 80
	for i := 0; i < keys; i++ {
		c.expect(t, fmt.Sprintf("PUT stable-%d value-%d", i, i), "OK")
	}
	c.expect(t, "SYNC", "OK")

	reply := c.roundTrip(t, "CRASH")
	if !strings.HasPrefix(reply, "OK ") {
		t.Fatalf("CRASH: %q", reply)
	}
	t.Logf("first crash: %s", reply)

	// Same connection, new engine incarnation behind it: all synced data
	// must be intact.
	for i := 0; i < keys; i++ {
		c.expect(t, fmt.Sprintf("GET stable-%d", i), fmt.Sprintf("VAL value-%d", i))
	}
	c.expect(t, "LEN", fmt.Sprintf("LEN %d", keys))

	// The restarted server must keep serving writes, and survive a second
	// crash the same way.
	for i := 0; i < keys; i++ {
		c.expect(t, fmt.Sprintf("PUT round2-%d v2-%d", i, i), "OK")
	}
	c.expect(t, "SYNC", "OK")
	if reply := c.roundTrip(t, "CRASH"); !strings.HasPrefix(reply, "OK ") {
		t.Fatalf("second CRASH: %q", reply)
	}
	for i := 0; i < keys; i++ {
		c.expect(t, fmt.Sprintf("GET stable-%d", i), fmt.Sprintf("VAL value-%d", i))
		c.expect(t, fmt.Sprintf("GET round2-%d", i), fmt.Sprintf("VAL v2-%d", i))
	}
}

// TestBatchAckWaitsForAllOps: a batched request must not complete until
// every operation's result slot is written. With a single-slot worker queue,
// submit blocks routing operation k+1 while a worker drains and completes
// operation k — the interleaving that exposed submit's original incremental
// remaining count, which let the request's done channel close (and the
// writer render result slots still being filled) after only a prefix of the
// batch had run.
func TestBatchAckWaitsForAllOps(t *testing.T) {
	addr := startServerCfg(t, config{
		Shards:      8,
		Slots:       64,
		HeapWords:   1 << 22,
		ArenaWords:  1 << 20,
		Pool:        2,
		Queue:       1,
		PersistProb: 0.5,
	})
	c := dial(t, addr)
	const keys = 48
	for i := 0; i < keys; i++ {
		c.expect(t, fmt.Sprintf("PUT ack-%d val-%d", i, i), "OK")
	}
	for iter := 0; iter < 20; iter++ {
		var req strings.Builder
		req.WriteString("MGET")
		for i := 0; i < keys; i++ {
			fmt.Fprintf(&req, " ack-%d", i)
		}
		req.WriteByte('\n')
		if _, err := c.conn.Write([]byte(req.String())); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < keys; i++ {
			line, err := c.r.ReadString('\n')
			if err != nil {
				t.Fatal(err)
			}
			if got, want := strings.TrimRight(line, "\r\n"), fmt.Sprintf("VAL val-%d", i); got != want {
				t.Fatalf("iter %d key %d: got %q, want %q (batch acknowledged before all ops ran?)", iter, i, got, want)
			}
		}
	}
}

// TestSyncBarrierWorstCaseCrash: SYNC must be a deterministic barrier, not a
// probabilistic one. With persist-prob 0 every word the barrier left
// unfenced dies in the crash, so any gap in the quiesce is exposed. The
// whole round is pipelined in one write — the shape that caught two real
// bugs here: (1) submit counted remaining incrementally, so a fast worker
// could acknowledge a batch with operations still being routed; (2) the
// barrier had no rendezvous, so one worker's quiesce timestamp could
// predate another worker's still-in-flight covered group, dragging the
// recovery rollback window (R = min over threads of the newest persisted
// sequence) below an acknowledged, synced write — the crash then undid it.
func TestSyncBarrierWorstCaseCrash(t *testing.T) {
	addr := startServerPersist(t, 0)
	c := dial(t, addr)
	for round := 0; round < 3; round++ {
		// Pipeline per-op puts, a batched MPUT, an MDEL, SYNC, and CRASH in
		// one burst so the barrier races the scheduler's group commits.
		var burst strings.Builder
		for i := 0; i < 8; i++ {
			fmt.Fprintf(&burst, "PUT solo-%d-%d r%d-%d\n", round, i, round, i)
		}
		burst.WriteString("MPUT")
		for i := 0; i < 16; i++ {
			fmt.Fprintf(&burst, " batch-%d-%d b%d-%d", round, i, round, i)
		}
		burst.WriteByte('\n')
		fmt.Fprintf(&burst, "MDEL batch-%d-0 batch-%d-1\n", round, round)
		burst.WriteString("SYNC\nCRASH\n")
		if _, err := c.conn.Write([]byte(burst.String())); err != nil {
			t.Fatal(err)
		}
		want := make([]string, 0, 12)
		for i := 0; i < 8; i++ {
			want = append(want, "OK")
		}
		want = append(want, "OK 16", "OK", "OK", "OK")
		c.expectLines(t, want...)
		crash, err := c.r.ReadString('\n')
		if err != nil {
			t.Fatalf("round %d CRASH reply: %v", round, err)
		}
		if !strings.HasPrefix(crash, "OK ") {
			t.Fatalf("round %d CRASH: %q", round, crash)
		}
		for i := 0; i < 8; i++ {
			c.expect(t, fmt.Sprintf("GET solo-%d-%d", round, i), fmt.Sprintf("VAL r%d-%d", round, i))
		}
		for i := 0; i < 16; i++ {
			want := fmt.Sprintf("VAL b%d-%d", round, i)
			if i < 2 {
				want = "NIL"
			}
			c.expect(t, fmt.Sprintf("GET batch-%d-%d", round, i), want)
		}
	}
}

// TestSyncConcurrentWithCrash stresses the barrier's lock discipline: while
// writers flood the workers, one connection SYNCs in a loop and another
// CRASHes. A worker that parked at the rendezvous while holding the server's
// read lock would deadlock here — CRASH's pending write lock blocks the
// other workers' batch read locks, so they never arrive and the release
// never comes. The test is a canary: a regression hangs it (go test's
// timeout fails the run) rather than failing an assertion.
func TestSyncConcurrentWithCrash(t *testing.T) {
	addr := startServerCfg(t, config{
		Shards:      8,
		Slots:       64,
		HeapWords:   1 << 22,
		ArenaWords:  1 << 20,
		Pool:        4,
		Queue:       4,
		PersistProb: 0.5,
	})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // writer pressure keeping every worker queue busy
		defer wg.Done()
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return
		}
		defer conn.Close()
		r := bufio.NewReader(conn)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := fmt.Fprintf(conn, "MPUT w%d a w%d b w%d c w%d d\n", i, i+1, i+2, i+3); err != nil {
				return
			}
			if _, err := r.ReadString('\n'); err != nil {
				return
			}
		}
	}()
	syncer := dial(t, addr)
	crasher := dial(t, addr)
	for i := 0; i < 15; i++ {
		done := make(chan struct{})
		go func() {
			defer close(done)
			if got := syncer.roundTrip(t, "SYNC"); got != "OK" {
				t.Errorf("SYNC: %q", got)
			}
		}()
		if reply := crasher.roundTrip(t, "CRASH"); !strings.HasPrefix(reply, "OK ") {
			t.Fatalf("CRASH: %q", reply)
		}
		<-done
	}
	close(stop)
	wg.Wait()
}

// TestCrashRollsBackWhole drives unsynced writes into a crash and checks the
// weaker—but still atomic—guarantee: every key is either at a committed
// value or absent, never torn, and the index still verifies (the CRASH reply
// carries the verified entry count).
func TestCrashRollsBackWhole(t *testing.T) {
	addr := startServer(t)
	c := dial(t, addr)
	const keys = 60
	for i := 0; i < keys; i++ {
		c.expect(t, fmt.Sprintf("PUT k%d first-%d", i, i), "OK")
	}
	for i := 0; i < keys; i++ {
		c.expect(t, fmt.Sprintf("PUT k%d second-%d", i, i), "OK")
	}
	reply := c.roundTrip(t, "CRASH")
	if !strings.HasPrefix(reply, "OK ") {
		t.Fatalf("CRASH: %q", reply)
	}
	for i := 0; i < keys; i++ {
		got := c.roundTrip(t, fmt.Sprintf("GET k%d", i))
		first := fmt.Sprintf("VAL first-%d", i)
		second := fmt.Sprintf("VAL second-%d", i)
		if got != first && got != second && got != "NIL" {
			t.Fatalf("key k%d torn after crash: %q", i, got)
		}
	}
}

// statsField extracts one numeric field from a STATS reply.
func statsField(t *testing.T, reply, field string) int {
	t.Helper()
	for _, tok := range strings.Fields(reply)[1:] {
		k, v, ok := strings.Cut(tok, "=")
		if !ok {
			t.Fatalf("malformed STATS token %q in %q", tok, reply)
		}
		if k == field {
			var n int
			if _, err := fmt.Sscanf(v, "%d", &n); err != nil {
				t.Fatalf("STATS %s=%q: %v", field, v, err)
			}
			return n
		}
	}
	t.Fatalf("STATS reply %q missing field %q", reply, field)
	return 0
}

// TestStatsLeakFreeAcrossCrash drives churn with deletes, crashes, and
// checks the arena occupancy the server reports: live + free must always
// account for every used word (leaked_words=0), and the high-water mark must
// not grow across the crash/recovery cycle — the store reclaims blocks that
// were free at the power failure.
func TestStatsLeakFreeAcrossCrash(t *testing.T) {
	addr := startServer(t)
	c := dial(t, addr)
	for i := 0; i < 60; i++ {
		c.expect(t, fmt.Sprintf("PUT key%02d value-%02d-abcdefghijklmnop", i, i), "OK")
	}
	for i := 0; i < 60; i += 2 {
		c.expect(t, fmt.Sprintf("DEL key%02d", i), "OK")
	}
	// Make the churn rollback-proof so the post-crash state is exactly this
	// one (a rolled-back delete would turn a later re-insert into an update,
	// whose transient double block would muddy the strict no-growth check).
	c.expect(t, "SYNC", "OK")
	before := c.roundTrip(t, "STATS")
	if leaked := statsField(t, before, "leaked_words"); leaked != 0 {
		t.Fatalf("leaked %d words before crash: %s", leaked, before)
	}
	usedBefore := statsField(t, before, "used_words")
	if free := statsField(t, before, "free_words"); free == 0 {
		t.Fatalf("expected free words after deletes: %s", before)
	}

	if reply := c.roundTrip(t, "CRASH"); !strings.HasPrefix(reply, "OK ") {
		t.Fatalf("CRASH: %q", reply)
	}
	after := c.roundTrip(t, "STATS")
	if leaked := statsField(t, after, "leaked_words"); leaked != 0 {
		t.Fatalf("leaked %d words across recovery: %s", leaked, after)
	}
	if usedAfter := statsField(t, after, "used_words"); usedAfter > usedBefore {
		t.Fatalf("arena grew across crash: used %d -> %d", usedBefore, usedAfter)
	}
	// Re-inserting the deleted keys is served from reclaimed space without
	// growing the arena. (Updates of live keys would transiently hold two
	// blocks — the new one is allocated before the commit-deferred free — so
	// the strict no-growth check uses pure inserts.)
	for i := 0; i < 60; i += 2 {
		c.expect(t, fmt.Sprintf("PUT key%02d value-%02d-abcdefghijklmnop", i, i), "OK")
	}
	final := c.roundTrip(t, "STATS")
	if leaked := statsField(t, final, "leaked_words"); leaked != 0 {
		t.Fatalf("leaked %d words after rewrite: %s", leaked, final)
	}
	if usedFinal := statsField(t, final, "used_words"); usedFinal > usedBefore {
		t.Fatalf("arena grew refilling reclaimed space: used %d -> %d", usedBefore, usedFinal)
	}
}
