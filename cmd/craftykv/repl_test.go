// Replication and failover drills: a primary and a replica in one process,
// the wire between them real TCP (optionally wrapped in netfault), the
// failure the drills inject the one replication exists for — the primary
// dying mid-burst. The core invariant every drill checks: a replica's state
// is always exactly the replay of a prefix of whole commit groups, so no
// acknowledged (SYNC-fenced) write is lost and no half-applied group is ever
// visible after a promotion.
package main

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"crafty/internal/kvclient"
	"crafty/internal/repl"
	"crafty/internal/repl/netfault"
)

// replCfg is the drills' base sizing; roles are layered on per test.
func replCfg() config {
	return config{
		Shards:      8,
		Slots:       64,
		HeapWords:   1 << 22,
		ArenaWords:  1 << 20,
		Pool:        4,
		PersistProb: 0.5,
		ReplLogCap:  1 << 14,
	}
}

// replNode is one server with its client listener and, for primaries, its
// replication listener — plus kill support for failover drills.
type replNode struct {
	srv      *server
	l, rl    net.Listener
	addr     string
	replAddr string
}

// startReplNode mirrors main(): build the server, then start whichever
// replication endpoints the config names. A cfg.ReplListen of "auto" gets an
// ephemeral listener.
func startReplNode(t *testing.T, cfg config) *replNode {
	t.Helper()
	wantPrimary := cfg.ReplListen != ""
	srv, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.serve(l)
	n := &replNode{srv: srv, l: l, addr: l.Addr().String()}
	if wantPrimary {
		rl, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv.startPrimary(rl)
		n.rl = rl
		n.replAddr = rl.Addr().String()
	}
	if cfg.ReplicaOf != "" {
		srv.startReplica(cfg.ReplicaOf, cfg.ReplDial)
	}
	t.Cleanup(n.kill)
	return n
}

// kill simulates the process dying: no listener answers and every
// replication session is severed mid-frame. In-process state (the retained
// group log) stays readable for the drill's assertions. Idempotent.
func (n *replNode) kill() {
	n.l.Close()
	if n.rl != nil {
		n.rl.Close()
	}
	if rs := n.srv.repl; rs != nil {
		if p := rs.getPrimary(); p != nil {
			p.Close()
		}
		if r := rs.getReplica(); r != nil {
			r.Stop()
		}
	}
}

func waitFor(t *testing.T, d time.Duration, what string, pred func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if pred() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// settleLog waits until no worker is still appending (the post-kill drain of
// already-queued batches) and returns the final sequence.
func settleLog(l *repl.Log) uint64 {
	for {
		s := l.LastSeq()
		time.Sleep(150 * time.Millisecond)
		if l.LastSeq() == s {
			return s
		}
	}
}

// replayGroups computes the state an honest replica at position upTo must
// hold: the replay of whole groups 1..upTo, nothing more.
func replayGroups(t *testing.T, gs []repl.Group, upTo uint64) map[string]string {
	t.Helper()
	if len(gs) > 0 && gs[0].Seq != 1 {
		t.Fatalf("retained log starts at %d, not 1 (trimmed; raise ReplLogCap)", gs[0].Seq)
	}
	m := map[string]string{}
	for _, g := range gs {
		if g.Seq > upTo {
			break
		}
		for _, op := range g.Ops {
			if op.Delete {
				delete(m, string(op.Key))
			} else {
				m[string(op.Key)] = string(op.Value)
			}
		}
	}
	return m
}

// promote issues PROMOTE on a replica and returns the announced position.
func promote(t *testing.T, addr string) (gen, seq uint64) {
	t.Helper()
	c := dial(t, addr)
	reply := c.roundTrip(t, "PROMOTE")
	if _, err := fmt.Sscanf(reply, "OK gen=%d seq=%d", &gen, &seq); err != nil {
		t.Fatalf("PROMOTE: %q", reply)
	}
	return gen, seq
}

// assertPrefixState checks the promoted node serves exactly expect (plus the
// reserved position record, which the text protocol cannot reach but LEN
// counts).
func assertPrefixState(t *testing.T, addr string, expect map[string]string) {
	t.Helper()
	cl, err := kvclient.Dial(addr, kvclient.Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	n, err := cl.Len()
	if err != nil {
		t.Fatal(err)
	}
	if n != uint64(len(expect))+1 {
		t.Fatalf("LEN %d, want %d replayed keys + 1 position record", n, len(expect))
	}
	for k, v := range expect {
		got, ok, err := cl.Get(k)
		if err != nil {
			t.Fatal(err)
		}
		if !ok || got != v {
			t.Fatalf("GET %s: got %q (present=%t), want %q — not the whole-group prefix", k, got, ok, v)
		}
	}
}

// TestReplicationFollowAndRefusal is the wiring smoke test: a replica tails
// the primary, serves reads, refuses writes, and both sides expose the repl
// counters over REPLINFO, INFO, and /metrics.
func TestReplicationFollowAndRefusal(t *testing.T) {
	pCfg := replCfg()
	pCfg.ReplListen = "auto"
	p := startReplNode(t, pCfg)
	rCfg := replCfg()
	rCfg.ReplicaOf = p.replAddr
	r := startReplNode(t, rCfg)

	cl, err := kvclient.Dial(p.addr, kvclient.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	const keys = 20
	for i := 0; i < keys; i++ {
		if err := cl.Put(fmt.Sprintf("f-%d", i), fmt.Sprintf("v-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 10*time.Second, "replica to catch up", func() bool {
		rep := r.srv.repl.getReplica()
		return rep != nil && rep.AppliedSeq() == p.srv.repl.log.LastSeq()
	})

	rc := dial(t, r.addr)
	for i := 0; i < keys; i += 5 {
		rc.expect(t, fmt.Sprintf("GET f-%d", i), fmt.Sprintf("VAL v-%d", i))
	}
	// The replica holds the replayed keys plus its reserved position record.
	rc.expect(t, "LEN", fmt.Sprintf("LEN %d", keys+1))
	rc.expect(t, "PUT f-0 hijack", replicaRefusal)
	rc.expect(t, "MPUT a 1 b 2", replicaRefusal)
	rc.expect(t, "DEL f-0", replicaRefusal)
	rc.expect(t, "GET f-0", "VAL v-0")

	if info := rc.roundTrip(t, "REPLINFO"); !strings.Contains(info, "role=replica") {
		t.Fatalf("replica REPLINFO: %q", info)
	}
	pc := dial(t, p.addr)
	pinfo := pc.roundTrip(t, "REPLINFO")
	if !strings.Contains(pinfo, "role=primary") || !strings.Contains(pinfo, "replicas=1") {
		t.Fatalf("primary REPLINFO: %q", pinfo)
	}

	// INFO carries the repl instruments.
	samples := infoSnapshot(t, pc)
	if got := samples["repl.groups"]; got != int64(p.srv.repl.log.LastSeq()) {
		t.Fatalf("INFO repl.groups = %d, want %d", got, p.srv.repl.log.LastSeq())
	}
	for _, name := range []string{"repl.lag", "repl.sync_waits", "repl.replicas"} {
		if _, ok := samples[name]; !ok {
			t.Fatalf("INFO missing %q", name)
		}
	}
	if samples["repl.replicas"] != 1 {
		t.Fatalf("INFO repl.replicas = %d, want 1", samples["repl.replicas"])
	}

	// /metrics serves the same registry as JSON.
	ml, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ml.Close()
	p.srv.serveMetrics(ml)
	resp, err := http.Get("http://" + ml.Addr().String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{`"repl.groups"`, `"repl.lag"`, `"repl.sync_waits"`} {
		if !strings.Contains(string(body), name) {
			t.Fatalf("/metrics missing %s: %s", name, body)
		}
	}
}

// infoSnapshot fetches and parses one INFO reply.
func infoSnapshot(t *testing.T, c *client) map[string]int64 {
	t.Helper()
	header := c.roundTrip(t, "INFO")
	var n int
	if _, err := fmt.Sscanf(header, "INFO %d", &n); err != nil {
		t.Fatalf("INFO header %q", header)
	}
	out := make(map[string]int64, n)
	for i := 0; i < n; i++ {
		line := c.readLine(t)
		var name string
		var v int64
		if _, err := fmt.Sscanf(line, "%s %d", &name, &v); err != nil {
			t.Fatalf("INFO line %q", line)
		}
		out[name] = v
	}
	return out
}

// TestFailoverDrillSync is the headline drill: with -repl-sync, a SYNC "OK"
// means everything before it is durable on the replica — so when the primary
// is killed in the middle of a later pipelined MPUT burst, promoting the
// replica must surface every fenced write, and the unacknowledged suffix must
// be a prefix of whole groups, never a half-applied batch.
func TestFailoverDrillSync(t *testing.T) {
	pCfg := replCfg()
	pCfg.ReplListen = "auto"
	pCfg.ReplSync = true
	pCfg.ReplSyncTimeout = 20 * time.Second
	p := startReplNode(t, pCfg)
	rCfg := replCfg()
	rCfg.ReplicaOf = p.replAddr
	r := startReplNode(t, rCfg)
	waitFor(t, 10*time.Second, "replica to attach", func() bool {
		return p.srv.repl.getPrimary().Replicas() == 1
	})

	cl, err := kvclient.Dial(p.addr, kvclient.Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	const acked = 40
	for i := 0; i < acked; i++ {
		if err := cl.Put(fmt.Sprintf("acked-%d", i), fmt.Sprintf("av-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	// The acknowledgement the drill is about: after this, every acked-* write
	// is durable on the replica (the barrier fenced the log's last sequence).
	if err := cl.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := p.srv.obs.replSyncWaits.Value(); got < 1 {
		t.Fatalf("repl.sync_waits = %d after a -repl-sync SYNC", got)
	}

	// Unacknowledged suffix: a pipelined MPUT burst nobody waits for, with the
	// primary killed mid-flight.
	burstConn, err := net.Dial("tcp", p.addr)
	if err != nil {
		t.Fatal(err)
	}
	var burst strings.Builder
	for i := 0; i < 120; i++ {
		fmt.Fprintf(&burst, "MPUT u%d x%d u%d y%d\n", 2*i, i, 2*i+1, i)
	}
	go burstConn.Write([]byte(burst.String()))
	time.Sleep(3 * time.Millisecond)
	p.kill()
	burstConn.Close()

	settleLog(p.srv.repl.log)
	retained := p.srv.repl.log.Retained()

	_, seq := promote(t, r.addr)
	expect := replayGroups(t, retained, seq)
	for i := 0; i < acked; i++ {
		k := fmt.Sprintf("acked-%d", i)
		if expect[k] != fmt.Sprintf("av-%d", i) {
			t.Fatalf("SYNC-acknowledged write %s missing from the replica's prefix (pos %d)", k, seq)
		}
	}
	assertPrefixState(t, r.addr, expect)

	// The promoted node serves writes; the failed-over client just repoints.
	cl.SetAddr(r.addr)
	if err := cl.Put("post-failover", "yes"); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := cl.Get("post-failover"); err != nil || !ok || v != "yes" {
		t.Fatalf("write after failover: %q %t %v", v, ok, err)
	}
	rc := dial(t, r.addr)
	if info := rc.roundTrip(t, "REPLINFO"); !strings.Contains(info, "role=primary") {
		t.Fatalf("promoted REPLINFO: %q", info)
	}
	if reply := rc.roundTrip(t, "PROMOTE"); !strings.HasPrefix(reply, "ERR already primary") {
		t.Fatalf("second PROMOTE: %q", reply)
	}
}

// TestFailoverDrillNetfault repeats the kill-mid-burst drill with the
// replication link behind seeded random faults (drops, delays, partial
// writes, severs). Whatever the fault schedule did to the stream, the
// promoted replica must hold exactly a whole-group prefix.
func TestFailoverDrillNetfault(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			pCfg := replCfg()
			pCfg.ReplListen = "auto"
			p := startReplNode(t, pCfg)
			rCfg := replCfg()
			rCfg.ReplicaOf = p.replAddr
			rCfg.ReplDial = netfault.Dialer(func() netfault.Policy {
				return netfault.NewRandomPolicy(seed, netfault.Probs{
					Drop: 0.05, Delay: 0.05, Partial: 0.03, Sever: 0.02,
				})
			})
			r := startReplNode(t, rCfg)

			cl, err := kvclient.Dial(p.addr, kvclient.Config{Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			defer cl.Close()
			for i := 0; i < 10; i++ {
				if err := cl.Put(fmt.Sprintf("base-%d", i), fmt.Sprintf("b-%d", i)); err != nil {
					t.Fatal(err)
				}
			}
			// Let the replica survive the fault schedule far enough to record
			// a position, so the drill exercises a non-empty prefix.
			waitFor(t, 20*time.Second, "replica first progress", func() bool {
				rep := r.srv.repl.getReplica()
				return rep != nil && rep.AppliedSeq() > 0
			})

			burstConn, err := net.Dial("tcp", p.addr)
			if err != nil {
				t.Fatal(err)
			}
			var burst strings.Builder
			for i := 0; i < 150; i++ {
				fmt.Fprintf(&burst, "MPUT n%d a%d n%d b%d\n", 2*i, i, 2*i+1, i)
			}
			go burstConn.Write([]byte(burst.String()))
			time.Sleep(10 * time.Millisecond)
			p.kill()
			burstConn.Close()

			settleLog(p.srv.repl.log)
			retained := p.srv.repl.log.Retained()

			_, seq := promote(t, r.addr)
			assertPrefixState(t, r.addr, replayGroups(t, retained, seq))
		})
	}
}

// TestReplicaCrashMidStream crashes the replica while it is attached to a
// live primary. Round 1 fences the position first (SYNC on the replica) and
// asserts the session resumes from the durable watermark over the stream — no
// snapshot transfer. Round 2 crashes with unfenced tail state and only
// demands convergence (the epoch checks route the session through whichever
// of rewind or resync is sound), re-applying overlapping groups idempotently.
func TestReplicaCrashMidStream(t *testing.T) {
	pCfg := replCfg()
	pCfg.ReplListen = "auto"
	p := startReplNode(t, pCfg)
	rCfg := replCfg()
	rCfg.ReplicaOf = p.replAddr
	r := startReplNode(t, rCfg)

	cl, err := kvclient.Dial(p.addr, kvclient.Config{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	put := func(prefix string, n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			if err := cl.Put(fmt.Sprintf("%s-%d", prefix, i), fmt.Sprintf("%s-v%d", prefix, i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	converged := func() bool {
		rep := r.srv.repl.getReplica()
		return rep != nil && rep.AppliedSeq() == p.srv.repl.log.LastSeq()
	}

	put("one", 50)
	waitFor(t, 10*time.Second, "initial catch-up", converged)

	// CRASH replies only after recovery completes, which the race detector
	// stretches past the client's default per-op timeout — and a timed-out
	// CRASH gets retried, re-crashing the freshly recovered server every
	// attempt. Size the timeout so one attempt always covers recovery.
	rc, err := kvclient.Dial(r.addr, kvclient.Config{Seed: 12, Timeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	// Fence the replica's position, then crash it.
	if err := rc.Sync(); err != nil {
		t.Fatal(err)
	}
	snapsBefore := r.srv.repl.getReplica().Snapshots()
	if reply, err := rc.Do("CRASH"); err != nil || !strings.HasPrefix(reply, "OK ") {
		t.Fatalf("replica CRASH: %q %v", reply, err)
	}

	// New primary traffic trips the epoch check, the session rewinds to the
	// fenced watermark, and tails the stream — no snapshot.
	put("two", 50)
	waitFor(t, 15*time.Second, "post-crash catch-up", converged)
	if got := r.srv.repl.getReplica().Snapshots(); got != snapsBefore {
		t.Fatalf("replica resynced via snapshot (%d -> %d); a fenced position must resume from the stream", snapsBefore, got)
	}
	v, ok, err := rc.Get("two-49")
	if err != nil || !ok || v != "two-v49" {
		t.Fatalf("replica after crash: two-49 = %q %t %v", v, ok, err)
	}

	// Round 2: unfenced tail, then crash. Overlapping groups are re-applied;
	// overwrites of round-1 keys must land on their final values.
	put("one", 50) // overwrite with identical values: re-apply is observable as "still correct"
	put("three", 50)
	if reply, err := rc.Do("CRASH"); err != nil || !strings.HasPrefix(reply, "OK ") {
		t.Fatalf("second replica CRASH: %q %v", reply, err)
	}
	put("four", 20)
	waitFor(t, 20*time.Second, "second post-crash catch-up", converged)
	for _, probe := range []struct{ k, v string }{
		{"one-0", "one-v0"}, {"three-49", "three-v49"}, {"four-19", "four-v19"},
	} {
		v, ok, err := rc.Get(probe.k)
		if err != nil || !ok || v != probe.v {
			t.Fatalf("replica after second crash: %s = %q %t %v, want %q", probe.k, v, ok, err, probe.v)
		}
	}
}

// TestReplicaSyncConcurrentWithCrash is the replication edition of the
// barrier/crash canary: while the primary streams a steady write load into
// the replica's applier, one connection SYNCs the replica in a loop and
// another CRASHes it. A lock-discipline regression between the applier's
// scheduler submissions, the SYNC barrier, and the crash handler hangs the
// test; the epoch checks must also heal every interleaving, so the replica
// converges once the chaos stops.
func TestReplicaSyncConcurrentWithCrash(t *testing.T) {
	pCfg := replCfg()
	pCfg.ReplListen = "auto"
	p := startReplNode(t, pCfg)
	rCfg := replCfg()
	rCfg.ReplicaOf = p.replAddr
	r := startReplNode(t, rCfg)

	stop := make(chan struct{})
	writerDone := make(chan struct{})
	go func() { // steady primary load keeps replicated applies in flight
		defer close(writerDone)
		cl, err := kvclient.Dial(p.addr, kvclient.Config{Seed: 21})
		if err != nil {
			return
		}
		defer cl.Close()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			cl.Put(fmt.Sprintf("w-%d", i%64), fmt.Sprintf("v-%d", i))
		}
	}()

	syncer := dial(t, r.addr)
	crasher := dial(t, r.addr)
	for i := 0; i < 10; i++ {
		done := make(chan struct{})
		go func() {
			defer close(done)
			if got := syncer.roundTrip(t, "SYNC"); got != "OK" {
				t.Errorf("replica SYNC: %q", got)
			}
		}()
		if reply := crasher.roundTrip(t, "CRASH"); !strings.HasPrefix(reply, "OK ") {
			t.Fatalf("replica CRASH: %q", reply)
		}
		<-done
	}
	close(stop)
	<-writerDone

	// Chaos over: the replica must heal and follow again.
	cl, err := kvclient.Dial(p.addr, kvclient.Config{Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 0; i < 10; i++ {
		if err := cl.Put(fmt.Sprintf("settle-%d", i), fmt.Sprintf("s-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 30*time.Second, "replica to heal after crash chaos", func() bool {
		rep := r.srv.repl.getReplica()
		return rep != nil && rep.AppliedSeq() == p.srv.repl.log.LastSeq()
	})
	rc := dial(t, r.addr)
	for i := 0; i < 10; i++ {
		rc.expect(t, fmt.Sprintf("GET settle-%d", i), fmt.Sprintf("VAL s-%d", i))
	}
}
