// The sharded request scheduler: instead of borrowing an engine thread per
// request (one durable transaction per client op, serialized through a
// channel round-trip), every connection routes its keyed operations onto
// per-worker queues — worker = shard mod workers, so same-shard traffic from
// every connection shares a queue — and each worker drains its queue into one
// Store.Apply call: a drained batch of K mutations from any number of
// connections commits in the worker's shard groups, paying the engine's
// per-transaction toll (Log-phase HTM commit, LOGGED/COMMITTED marker pair,
// batched flush) once per group instead of once per op. Completions are
// routed back to each connection's pipelined writer, which renders responses
// strictly in that connection's request order.
package main

import (
	"bufio"
	"sync"
	"sync/atomic"
	"time"

	"crafty"
	"crafty/internal/repl"
)

// cmdKind selects how a completed request renders.
type cmdKind uint8

const (
	cmdInline cmdKind = iota // pre-rendered text (errors, OK-style acks)
	cmdPut                   // OK | ERR
	cmdGet                   // VAL v | NIL | ERR
	cmdDel                   // OK | NIL | ERR
	cmdMGet                  // one VAL/NIL line per key
	cmdMPut                  // OK <n> | ERR (first failure)
	cmdMDel                  // one OK/NIL line per key
	cmdLen                   // LEN <n> | ERR
	cmdHello                 // binary handshake ack (wire.go); n is the version
)

// opResult is one operation's outcome, copied out of the worker's reused
// Apply buffers into request-owned storage.
type opResult struct {
	found bool
	val   []byte
	err   error
}

// request is one wire command in flight: its parsed operations, their
// results, and the completion signal the connection's writer waits on.
// Requests are pooled; all slices are reused across requests.
type request struct {
	cmd  cmdKind
	text string // cmdInline rendering

	ops []crafty.KVOp
	res []opResult
	buf []byte // backing storage for the ops' copied keys and values

	n         uint64 // cmdLen result
	err       error  // request-level failure (cmdLen)
	remaining atomic.Int32
	done      chan struct{}

	// t0 is the parse-time stamp for the enqueue→reply latency histogram,
	// taken and read strictly outside any transaction.
	t0 time.Time

	// notify, when non-nil, is closed by the connection writer once this
	// request has been processed in order — the reader's progress barrier
	// (connReader.waitPrior).
	notify chan struct{}
}

var requestPool = sync.Pool{New: func() any { return &request{} }}

// newRequest draws a reset request from the pool.
func newRequest(cmd cmdKind) *request {
	r := requestPool.Get().(*request)
	r.cmd = cmd
	r.text = ""
	r.ops = r.ops[:0]
	r.res = r.res[:0]
	r.buf = r.buf[:0]
	r.n = 0
	r.err = nil
	r.remaining.Store(0)
	r.done = make(chan struct{})
	r.notify = nil
	r.t0 = time.Now()
	return r
}

// inlineRequest is a request carrying fixed response text and no scheduler
// work; it rides the connection's pending queue so immediate replies stay
// ordered with in-flight operations. submit completes it (push hands every
// request to submit; callers bypassing push must close done themselves).
func inlineRequest(text string) *request {
	r := newRequest(cmdInline)
	r.text = text
	return r
}

// copyBytes copies s into the request's backing buffer and returns the
// aliasing slice (safe across buffer growth: earlier slices keep the old
// backing array alive). Taking a string avoids a throwaway []byte(token)
// allocation per parsed token.
func (r *request) copyBytes(s string) []byte {
	off := len(r.buf)
	r.buf = append(r.buf, s...)
	return r.buf[off : off+len(s) : off+len(s)]
}

// copyBuf is copyBytes over a byte token — the text tokenizer's and the
// binary frame decoder's entry point; both hand in slices aliasing a
// connection read buffer that is reused after dispatch, so this copy is the
// aliasing boundary.
func (r *request) copyBuf(b []byte) []byte {
	off := len(r.buf)
	r.buf = append(r.buf, b...)
	return r.buf[off : off+len(b) : off+len(b)]
}

// addOp appends one operation, copying key and value; an empty value means
// none (wire tokens are never empty).
func (r *request) addOp(kind crafty.KVOpKind, key, value string) {
	op := crafty.KVOp{Kind: kind, Key: r.copyBytes(key)}
	if value != "" {
		op.Value = r.copyBytes(value)
	}
	r.pushOp(op)
}

// addOpBytes is addOp over byte tokens.
func (r *request) addOpBytes(kind crafty.KVOpKind, key, value []byte) {
	op := crafty.KVOp{Kind: kind, Key: r.copyBuf(key)}
	if len(value) > 0 {
		op.Value = r.copyBuf(value)
	}
	r.pushOp(op)
}

// pushOp appends op and its result slot. The slot is recycled in place when
// the pooled slice has capacity, so its value buffer's backing array survives
// across requests.
func (r *request) pushOp(op crafty.KVOp) {
	r.ops = append(r.ops, op)
	if n := len(r.res); n < cap(r.res) {
		r.res = r.res[:n+1]
		s := &r.res[n]
		s.found = false
		s.err = nil
		s.val = s.val[:0]
	} else {
		r.res = append(r.res, opResult{})
	}
}

// task is one scheduler queue item: either one operation of a request, a
// whole-store read (LEN), or a durability barrier.
type task struct {
	req *request
	op  int // index into req.ops; -1 for barriers and cmdLen

	// barrier, when non-nil, asks the worker to rendezvous with the other
	// workers and then quiesce its own thread's log; errSlot receives a
	// failure. See server.sync for the two-phase protocol and why the
	// rendezvous is load-bearing.
	barrier *syncBarrier
	errSlot *error
}

// syncBarrier coordinates one SYNC across every worker: all workers first
// arrive (their pre-barrier operations have committed), then — and only then
// — each quiesces its own thread's log. Drawing the quiesce timestamps after
// the rendezvous is what makes the barrier sound: recovery rolls back every
// sequence with ts >= R, R the minimum over threads of the newest persisted
// sequence, so a quiesce marker timestamped before another worker's
// still-in-flight covered commit would drag R below that commit and recovery
// would undo an acknowledged, synced write.
type syncBarrier struct {
	arrive  sync.WaitGroup
	release chan struct{} // closed once every worker has arrived
	done    sync.WaitGroup

	// Checkpoint rendezvous (nil resume = plain SYNC): after quiescing, each
	// worker parks again until resume closes, giving server.syncWith a window
	// where every log is synced and no transaction can start — the only
	// moment a checkpoint's verified watermark is sound to write (and free-
	// block coalescing is safe).
	quiesced sync.WaitGroup
	resume   chan struct{}
}

// worker owns one engine thread (indexed by id into server.threads) and one
// queue; it is the only goroutine that ever uses that thread.
type worker struct {
	srv   *server
	id    int
	queue chan task

	// tapOps is the reused staging buffer for the replication tap: the
	// batch's committed mutations, handed to repl.Log.Append (which deep-
	// copies) right after the group commit returns.
	tapOps []repl.Op
}

// enqueue routes one operation of req (already counted in req.remaining) to
// the worker owning its key's shard.
func (s *server) enqueue(req *request, op int) {
	w := s.workers[s.router.ShardOf(req.ops[op].Key)%len(s.workers)]
	w.queue <- task{req: req, op: op}
}

// submit enqueues every operation of req; requests with no keyed operations
// complete immediately.
func (s *server) submit(req *request) {
	if len(req.ops) == 0 && req.cmd != cmdLen {
		close(req.done)
		return
	}
	if req.cmd == cmdLen {
		req.remaining.Store(1)
		s.workers[0].queue <- task{req: req, op: -1}
		return
	}
	// Count every operation before enqueueing any. Workers start completing
	// already-queued operations while later ones are still being routed, so
	// an incremental count can hit zero early — acknowledging the request,
	// rendering results whose slots are still being written, and (worse)
	// letting a SYNC issued after the premature ack barrier the workers
	// before the request's last group commit, so a crash rolled back an
	// acknowledged, synced write.
	req.remaining.Store(int32(len(req.ops)))
	for i := range req.ops {
		s.enqueue(req, i)
	}
}

// run is the worker's drain loop: block for one task, drain what else is
// already queued (up to the drain bound), execute the batch's operations in
// one Store.Apply — the group commit — and route completions.
func (w *worker) run() {
	var (
		items []task
		ops   []crafty.KVOp
		res   []crafty.KVOpResult
		dst   []byte
	)
	for first := range w.queue {
		items = append(items[:0], first)
	drain:
		for len(items) < w.srv.cfg.Drain {
			select {
			case t := <-w.queue:
				items = append(items, t)
			default:
				break drain
			}
		}
		// Drained batch size, recorded between transactions (the Apply below
		// has not started); the distribution shows how much group-commit
		// batching the offered load actually achieves.
		w.srv.obs.drainBatch.Observe(int64(len(items)))

		w.srv.mu.RLock()
		th := w.srv.threads[w.id]
		store := w.srv.store

		ops = ops[:0]
		for _, t := range items {
			if t.req != nil && t.op >= 0 {
				ops = append(ops, t.req.ops[t.op])
			}
		}
		if len(ops) > 0 {
			//crafty:ignoreerr Apply's batch error is contractually nil; per-op failures (incl. ErrTxTooLarge) are consumed from res below
			res, dst, _ = store.Apply(th, ops, res, dst[:0])
			// Replication tap: append the batch's committed mutations to the
			// shared log before any completion (and before any barrier parking
			// later in this loop), so a SYNC barrier's fully-quiesced point
			// always covers every group the log covers.
			if rs := w.srv.repl; rs != nil && rs.tapping() {
				w.tap(items, res)
			}
		}

		j := 0
		for _, t := range items {
			switch {
			case t.barrier != nil:
				// Durability barrier, phase 1: this worker's pre-barrier
				// operations have all committed (they preceded the barrier in
				// this queue; ops drained alongside it ran in the Apply
				// above — over-delivery is fine). Park until every worker
				// reaches this point, so no quiesce timestamp can predate
				// another worker's covered commit (see syncBarrier). Parking
				// must not hold the server lock: a concurrent CRASH bidding
				// for the write lock would block the other workers' batch
				// read locks, they would never arrive, and the release would
				// never come.
				w.srv.mu.RUnlock()
				t.barrier.arrive.Done()
				<-t.barrier.release
				// Phase 2: quiesce this worker thread's own log. SyncDurable
				// appends a drained empty sequence, deterministically moving
				// the thread's newest persisted sequence past every covered
				// write. Re-read the thread: a CRASH while this worker was
				// parked replaces the engine, and quiescing the fresh log is
				// the harmless outcome (the crash already discarded whatever
				// the barrier was to cover). Later tasks in this batch reuse
				// th/store, so refresh both.
				w.srv.mu.RLock()
				th = w.srv.threads[w.id]
				store = w.srv.store
				if err := syncThread(th, w.srv.root); err != nil && t.errSlot != nil {
					*t.errSlot = err
				}
				if t.barrier.resume != nil {
					// Checkpoint rendezvous: park — again without the server
					// lock, for the same CRASH-deadlock reason — until the
					// barrier's hook has run at the fully quiesced point,
					// then refresh th/store once more (a concurrent CRASH may
					// have replaced the engine while this worker was parked).
					w.srv.mu.RUnlock()
					t.barrier.quiesced.Done()
					<-t.barrier.resume
					w.srv.mu.RLock()
					th = w.srv.threads[w.id]
					store = w.srv.store
				}
				t.barrier.done.Done()
			case t.op < 0:
				// LEN: a read-only sweep over the shard headers.
				t.req.n, t.req.err = store.Len(th)
				t.req.complete()
			default:
				r := &t.req.res[t.op]
				out := res[j]
				j++
				r.found = out.Found
				r.err = out.Err
				if out.Value != nil {
					// Copy out of the worker's reused value buffer before
					// the next batch overwrites it. Each op has its own
					// result slot, so concurrent workers completing one
					// request never share a destination.
					r.val = append(r.val[:0], out.Value...)
				} else {
					r.val = r.val[:0] // keep the backing array for reuse
				}
				t.req.complete()
			}
		}
		w.srv.mu.RUnlock()
	}
}

// tap collects the batch's successfully committed mutations into one
// replication group. Result indexing mirrors the completion loop: res[j] for
// every task with a request and a real op index, in drain order. Reads and
// failed operations are not replicated; reserved keys (the replica's own
// position record) never leave the machine. Append deep-copies, so aliasing
// the requests' op buffers here is safe even though they are pooled after
// completion.
func (w *worker) tap(items []task, res []crafty.KVOpResult) {
	w.tapOps = w.tapOps[:0]
	j := 0
	for _, t := range items {
		if t.req == nil || t.op < 0 {
			continue
		}
		op := t.req.ops[t.op]
		out := res[j]
		j++
		if out.Err != nil || replReserved(op.Key) {
			continue
		}
		switch op.Kind {
		case crafty.KVPut:
			w.tapOps = append(w.tapOps, repl.Op{Key: op.Key, Value: op.Value})
		case crafty.KVDelete:
			w.tapOps = append(w.tapOps, repl.Op{Delete: true, Key: op.Key})
		}
	}
	if len(w.tapOps) > 0 {
		w.srv.repl.log.Append(w.tapOps)
	}
}

// complete marks one operation done, closing the request's done channel when
// it was the last.
func (r *request) complete() {
	if r.remaining.Add(-1) == 0 {
		close(r.done)
	}
}

// render writes the completed request's response lines.
func render(out *bufio.Writer, req *request) {
	reply := func(format string, args ...any) { writeLinef(out, format, args...) }
	switch req.cmd {
	case cmdInline:
		if req.text == "" {
			return // no-output marker (connReader.waitPrior)
		}
		out.WriteString(req.text)
		out.WriteByte('\n')
	case cmdPut:
		if err := req.res[0].err; err != nil {
			reply("ERR %v", err)
		} else {
			reply("OK")
		}
	case cmdGet:
		renderGet(out, &req.res[0])
	case cmdMGet:
		for i := range req.res {
			renderGet(out, &req.res[i])
		}
	case cmdDel:
		renderDel(out, &req.res[0])
	case cmdMDel:
		for i := range req.res {
			renderDel(out, &req.res[i])
		}
	case cmdMPut:
		for i := range req.res {
			if err := req.res[i].err; err != nil {
				reply("ERR op %d: %v", i, err)
				return
			}
		}
		reply("OK %d", len(req.res))
	case cmdLen:
		if req.err != nil {
			reply("ERR %v", req.err)
		} else {
			reply("LEN %d", req.n)
		}
	}
}

func renderGet(out *bufio.Writer, r *opResult) {
	switch {
	case r.err != nil:
		writeLinef(out, "ERR %v", r.err)
	case !r.found:
		writeLinef(out, "NIL")
	default:
		out.WriteString("VAL ")
		out.Write(r.val)
		out.WriteByte('\n')
	}
}

func renderDel(out *bufio.Writer, r *opResult) {
	switch {
	case r.err != nil:
		writeLinef(out, "ERR %v", r.err)
	case !r.found:
		writeLinef(out, "NIL")
	default:
		writeLinef(out, "OK")
	}
}
