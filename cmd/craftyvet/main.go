// Command craftyvet is the multichecker for the repository's transactional
// discipline: a suite of static analyzers that enforce at compile time the
// invariants the engine otherwise only documents or checks at run time.
//
//	txbody    — transaction bodies must be re-execution-safe: no obs
//	            instruments, time/rand, channels, sync primitives,
//	            goroutines, I/O, or compounding captured-state writes
//	            in-body (DESIGN.md §11)
//	robody    — AtomicRead bodies must not Store/Alloc/Free (compile-time
//	            ptm.ErrReadOnlyTx)
//	atomicmix — a field accessed via sync/atomic must never be accessed
//	            plainly (guards lock-elided owner-claim protocols)
//	errtyped  — Atomic/AtomicRead/Store.Apply errors must be handled
//	            (ptm.ErrTxTooLarge is reachable by contract)
//
// Run it standalone over package patterns:
//
//	go run ./cmd/craftyvet -json ./...
//
// or as a go vet tool, which adds build caching, analysis of test files,
// and cross-package facts persisted between runs:
//
//	go build -o bin/craftyvet ./cmd/craftyvet
//	go vet -vettool=bin/craftyvet ./...
//
// Audited exceptions are annotated in source with //crafty:txsafe,
// //crafty:unsync, or //crafty:ignoreerr, each with a justification.
package main

import (
	"crafty/internal/analysis"
	"crafty/internal/analysis/atomicmix"
	"crafty/internal/analysis/errtyped"
	"crafty/internal/analysis/robody"
	"crafty/internal/analysis/txbody"
)

func main() {
	analysis.Main(
		txbody.Analyzer,
		robody.Analyzer,
		atomicmix.Analyzer,
		errtyped.Analyzer,
	)
}
