package main_test

import (
	"bytes"
	"encoding/json"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool builds the craftyvet binary into a per-test temp dir.
func buildTool(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "craftyvet")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// TestRepoCleanStandaloneJSON pins the audited state of the tree: the
// standalone driver over ./... must produce machine-readable output with
// zero diagnostics. Any regression — a new in-body instrument call, a
// discarded transaction error — fails this test before it reaches CI.
func TestRepoCleanStandaloneJSON(t *testing.T) {
	bin := buildTool(t)
	cmd := exec.Command(bin, "-json", "./...")
	cmd.Dir = "../.."
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("craftyvet -json ./...: %v\nstderr:\n%s", err, stderr.String())
	}
	var report map[string]map[string][]struct {
		Posn    string `json:"posn"`
		Message string `json:"message"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &report); err != nil {
		t.Fatalf("output is not the documented JSON shape: %v\n%s", err, stdout.String())
	}
	for pkg, byAnalyzer := range report {
		for analyzer, diags := range byAnalyzer {
			for _, d := range diags {
				t.Errorf("%s: %s [%s, %s]", d.Posn, d.Message, analyzer, pkg)
			}
		}
	}
}

// TestRepoCleanUnderGoVet runs the tool the way CI does — through go vet's
// unitchecker protocol, which additionally covers _test.go files and
// exercises the fact files cached between packages.
func TestRepoCleanUnderGoVet(t *testing.T) {
	if testing.Short() {
		t.Skip("go vet over the whole module is not short")
	}
	bin := buildTool(t)
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = "../.."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool: %v\n%s", err, out)
	}
}

// TestProtocolHandshake pins the two endpoints cmd/go probes before trusting
// a vettool: the -V=full build ID line and the -flags JSON dump.
func TestProtocolHandshake(t *testing.T) {
	bin := buildTool(t)

	out, err := exec.Command(bin, "-V=full").Output()
	if err != nil {
		t.Fatalf("-V=full: %v", err)
	}
	fields := strings.Fields(string(out))
	if len(fields) < 3 || fields[1] != "version" || !strings.HasPrefix(fields[len(fields)-1], "buildID=") {
		t.Fatalf("-V=full output not parseable by cmd/go: %q", out)
	}

	out, err = exec.Command(bin, "-flags").Output()
	if err != nil {
		t.Fatalf("-flags: %v", err)
	}
	var defs []struct {
		Name  string
		Bool  bool
		Usage string
	}
	if err := json.Unmarshal(out, &defs); err != nil {
		t.Fatalf("-flags output is not JSON: %v\n%s", err, out)
	}
	want := map[string]bool{"json": false, "txbody": false, "robody": false, "atomicmix": false, "errtyped": false}
	for _, d := range defs {
		delete(want, d.Name)
	}
	for name := range want {
		t.Errorf("-flags output missing flag %q", name)
	}
}
