// Command craftybench regenerates the Crafty paper's evaluation — the
// throughput figures (6–8 and the 100 ns sensitivity repeats 22–24), Table 1
// (persistent writes per transaction), and the appendix's transaction
// breakdown figures — plus the durable key-value experiments ("kv", "kvfull")
// that run YCSB-style workloads over the kv subsystem, all over the emulated
// NVM/HTM substrates.
//
// Usage:
//
//	craftybench -experiment fig6                # one figure
//	craftybench -experiment kv                  # YCSB-A/B over the KV store, all engines
//	craftybench -experiment kvfull              # YCSB A-F (+ uniform A)
//	craftybench -experiment all -ops 3000       # everything, shorter runs
//	craftybench -experiment table1
//	craftybench -experiment breakdowns          # appendix figures 9–21 data
//	craftybench -experiment fig8 -threads 1,2,4 # override the thread axis
//	craftybench -experiment kv -json            # machine-readable cells on stdout
//
// Absolute throughput is not comparable to the paper's Skylake testbed; the
// relevant output is the relative shape across engines and thread counts,
// which EXPERIMENTS.md discusses.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"crafty/internal/harness"
	"crafty/internal/htm"
	"crafty/internal/ptm"
)

func main() {
	var (
		experiment = flag.String("experiment", "fig6", "fig6|fig7|fig8|fig22|fig23|fig24|kv|kvfull|batch|table1|breakdowns|all")
		ops        = flag.Int("ops", 5000, "operations per thread per measurement")
		threads    = flag.String("threads", "", "comma-separated thread counts overriding the paper's 1,2,4,8,12,15,16")
		seed       = flag.Int64("seed", 1, "random seed")
		verbose    = flag.Bool("v", true, "print per-cell progress")
		jsonOut    = flag.Bool("json", false, "emit results as JSON on stdout instead of tables")
	)
	flag.Parse()

	if err := run(*experiment, *ops, *threads, *seed, *verbose, *jsonOut); err != nil {
		fmt.Fprintln(os.Stderr, "craftybench:", err)
		os.Exit(1)
	}
}

// jsonCell is one measured point in -json output.
type jsonCell struct {
	Figure       string  `json:"figure"`
	Workload     string  `json:"workload"`
	Engine       string  `json:"engine"`
	Threads      int     `json:"threads"`
	Ops          int     `json:"ops"`
	ElapsedNs    int64   `json:"elapsed_ns"`
	Throughput   float64 `json:"ops_per_sec"`
	Normalized   float64 `json:"normalized"`
	WritesPerTxn float64 `json:"writes_per_txn"`

	// The ptm.Stats breakdown for the cell: committed persistent
	// transactions by outcome, hardware transaction commits and aborts by
	// cause, and body-error abandons — so BENCH artifacts can explain why a
	// throughput number moved, not just that it did.
	Outcomes   map[string]uint64 `json:"outcomes,omitempty"`
	HTMCommits uint64            `json:"htm_commits,omitempty"`
	HTMAborts  map[string]uint64 `json:"htm_aborts,omitempty"`
	UserAborts uint64            `json:"user_aborts,omitempty"`
}

// breakdownOf flattens a cell's ptm.Stats into the jsonCell maps, dropping
// zero entries so the common case stays compact.
func breakdownOf(st ptm.Stats) (outcomes, aborts map[string]uint64) {
	outcomes = make(map[string]uint64)
	for o := 0; o < ptm.NumOutcomes; o++ {
		if n := st.Persistent[o]; n != 0 {
			outcomes[ptm.Outcome(o).MetricKey()] = n
		}
	}
	aborts = make(map[string]uint64)
	for c := 1; c < htm.NumCauses; c++ {
		if n := st.HTM.Aborts[c]; n != 0 {
			aborts[htm.AbortCause(c).String()] = n
		}
	}
	return outcomes, aborts
}

func run(experiment string, ops int, threadsFlag string, seed int64, verbose, jsonOut bool) error {
	threadAxis, err := parseThreads(threadsFlag)
	if err != nil {
		return err
	}
	progress := os.Stderr
	if !verbose {
		progress = nil
	}

	figures := harness.Figures()
	var cells []jsonCell
	runFigure := func(id string, breakdowns bool) error {
		fig, ok := figures[id]
		if !ok {
			return fmt.Errorf("unknown figure %q", id)
		}
		if threadAxis != nil {
			fig.Threads = threadAxis
		}
		result, err := harness.RunFigure(fig, ops, seed, progress)
		if err != nil {
			return err
		}
		if jsonOut {
			for _, c := range result.Cells {
				outcomes, aborts := breakdownOf(c.Result.Stats)
				cells = append(cells, jsonCell{
					Figure:       fig.ID,
					Workload:     c.Workload,
					Engine:       c.Engine,
					Threads:      c.Threads,
					Ops:          c.Result.Ops,
					ElapsedNs:    c.Result.Elapsed.Nanoseconds(),
					Throughput:   c.Result.Throughput,
					Normalized:   c.Normalized,
					WritesPerTxn: c.Result.Stats.WritesPerTxn(),
					Outcomes:     outcomes,
					HTMCommits:   c.Result.Stats.HTM.Commits,
					HTMAborts:    aborts,
					UserAborts:   c.Result.Stats.UserAborts,
				})
			}
			return nil
		}
		result.WriteTable(os.Stdout)
		if breakdowns {
			result.WriteBreakdowns(os.Stdout)
		}
		return nil
	}
	flush := func() error {
		if !jsonOut {
			return nil
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(cells)
	}

	// table1Cells renders Table 1 rows as JSON cells (figure "table1"; only
	// the workload and writes-per-transaction fields are meaningful).
	table1Cells := func(rows []harness.Table1Row) {
		for _, r := range rows {
			cells = append(cells, jsonCell{Figure: "table1", Workload: r.Workload, WritesPerTxn: r.WritesPerTxn})
		}
	}

	switch experiment {
	case "table1":
		rows, err := harness.RunTable1(ops, seed)
		if err != nil {
			return err
		}
		if jsonOut {
			table1Cells(rows)
			return flush()
		}
		harness.WriteTable1(os.Stdout, rows)
		return nil
	case "breakdowns":
		// The appendix's Figures 9–21 are the per-configuration breakdowns of
		// the Figure 6–8 runs.
		for _, id := range []string{"fig6", "fig7", "fig8"} {
			if err := runFigure(id, true); err != nil {
				return err
			}
		}
		return flush()
	case "all":
		var ids []string
		for id := range figures {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			if err := runFigure(id, true); err != nil {
				return err
			}
		}
		rows, err := harness.RunTable1(ops, seed)
		if err != nil {
			return err
		}
		if jsonOut {
			table1Cells(rows)
		} else {
			harness.WriteTable1(os.Stdout, rows)
		}
		return flush()
	default:
		if err := runFigure(experiment, false); err != nil {
			return err
		}
		return flush()
	}
}

func parseThreads(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("invalid thread count %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}
