// Command craftyrecover demonstrates Crafty's crash recovery end to end on
// the emulated persistent heap: it runs a workload, injects a crash with a
// configurable persistence policy, runs the recovery observer, and verifies
// that the recovered state is consistent.
//
// Two workloads are available:
//
//   - bank (default): a multi-threaded transfer workload over a fixed set of
//     accounts; consistency means the total balance is conserved.
//   - kv: a single durable key-value store churned with puts and deletes, so
//     arena blocks are allocated and freed constantly; mid-churn it takes an
//     incremental checkpoint (unless -checkpoint=false), and after the crash
//     the engine recovery is followed by the bounded kv reopen — the report
//     shows each recovery phase's wall time, how many shards the watermark
//     let it skip, the arena occupancy (live, free, high-water), and that no
//     words leaked. -paranoid forces the full verify + reconcile path.
//
// Usage:
//
//	craftyrecover -threads 4 -ops 2000 -persist-prob 0.5
//	craftyrecover -workload kv -ops 2000 -persist-prob 0.5 -seed 7
//	craftyrecover -workload kv -paranoid
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"time"

	"crafty"
)

func main() {
	var (
		workload    = flag.String("workload", "bank", "workload to crash and recover: bank or kv")
		threads     = flag.Int("threads", 4, "worker threads (bank workload)")
		ops         = flag.Int("ops", 2000, "operations per thread before the crash")
		persistProb = flag.Float64("persist-prob", 0.5, "probability that an unflushed write survives the crash")
		seed        = flag.Int64("seed", 1, "random seed")
		checkpoint  = flag.Bool("checkpoint", true, "take an incremental checkpoint mid-churn (kv workload)")
		paranoid    = flag.Bool("paranoid", false, "recover with the full index verify + arena reconcile even when a checkpoint watermark would bound it (kv workload)")
	)
	flag.Parse()
	var err error
	switch *workload {
	case "bank":
		err = runBank(*threads, *ops, *persistProb, *seed)
	case "kv":
		err = runKV(*ops, *persistProb, *seed, *checkpoint, *paranoid)
	default:
		err = fmt.Errorf("unknown -workload %q (want bank or kv)", *workload)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "craftyrecover:", err)
		os.Exit(1)
	}
}

// printArena reports allocator occupancy; with the crash-recoverable
// allocator, live + free always accounts for every word below the high-water
// mark — nothing leaks across recovery.
func printArena(eng *crafty.Engine) {
	st := eng.Arena().Stats()
	fmt.Printf("arena: %d live blocks (%d words) + %d free blocks (%d words) = %d of %d words used; leaked %d\n",
		st.Live, st.LiveWords, st.FreeBlocks, st.FreeWords, st.UsedWords, st.DataWords,
		st.UsedWords-st.LiveWords-st.FreeWords)
}

func runBank(threads, ops int, persistProb float64, seed int64) error {
	const accounts = 64
	const initial = 1000

	heap := crafty.NewHeap(crafty.HeapConfig{
		Words:            1 << 22,
		PersistLatency:   crafty.NoLatency,
		TrackPersistence: true,
	})
	eng, err := crafty.New(heap, crafty.Config{})
	if err != nil {
		return err
	}
	layout := eng.Layout()

	base := heap.MustCarve(accounts * crafty.WordsPerLine)
	addrOf := func(i int) crafty.Addr { return base + crafty.Addr(i*crafty.WordsPerLine) }
	// The setup thread doubles as worker 0, so no worker handle goes idle
	// with an old last-logged sequence (which would force recovery to rewind
	// further than necessary).
	workers := make([]crafty.Thread, threads)
	for g := range workers {
		workers[g] = eng.Register()
	}
	if err := workers[0].Atomic(func(tx crafty.Tx) error {
		for i := 0; i < accounts; i++ {
			tx.Store(addrOf(i), initial)
		}
		return nil
	}); err != nil {
		return err
	}

	fmt.Printf("running %d threads x %d transfers over %d accounts...\n", threads, ops, accounts)
	var wg sync.WaitGroup
	for g := 0; g < threads; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			th := workers[g]
			rng := rand.New(rand.NewSource(seed + int64(g)))
			for i := 0; i < ops; i++ {
				from, to := rng.Intn(accounts), rng.Intn(accounts)
				if from == to {
					to = (to + 1) % accounts
				}
				amount := uint64(1 + rng.Intn(9))
				_ = th.Atomic(func(tx crafty.Tx) error {
					tx.Store(addrOf(from), tx.Load(addrOf(from))-amount)
					tx.Store(addrOf(to), tx.Load(addrOf(to))+amount)
					return nil
				})
			}
		}(g)
	}
	wg.Wait()

	fmt.Printf("injecting crash (each unfenced write survives with probability %.2f)...\n", persistProb)
	heap.Crash(crafty.NewRandomCrashPolicy(seed, persistProb))

	start := time.Now()
	report, err := crafty.Recover(heap, layout)
	if err != nil {
		return err
	}
	fmt.Printf("recovery: scanned %d thread logs, found %d sequences, rolled back %d (restored %d words) in %v\n",
		report.ThreadsScanned, report.SequencesFound, report.SequencesRolledBack, report.WordsRestored, time.Since(start))

	var total uint64
	for i := 0; i < accounts; i++ {
		total += heap.Load(addrOf(i))
	}
	fmt.Printf("total balance after recovery: %d (expected %d)\n", total, accounts*initial)
	if total != accounts*initial {
		return fmt.Errorf("recovered state is inconsistent")
	}

	// The heap can be reopened and used again.
	eng2, err := crafty.Reopen(heap, layout, crafty.Config{})
	if err != nil {
		return err
	}
	eng2.AdvanceClock(report.MaxTimestamp)
	th := eng2.Register()
	if err := th.Atomic(func(tx crafty.Tx) error {
		tx.Store(addrOf(0), tx.Load(addrOf(0))+1)
		tx.Store(addrOf(1), tx.Load(addrOf(1))-1)
		return nil
	}); err != nil {
		return err
	}
	fmt.Println("post-recovery transaction committed; the heap is usable again")
	return nil
}

func runKV(ops int, persistProb float64, seed int64, checkpoint, paranoid bool) error {
	heap := crafty.NewHeap(crafty.HeapConfig{
		Words:            1 << 22,
		PersistLatency:   crafty.NoLatency,
		TrackPersistence: true,
	})
	cfg := crafty.Config{ArenaWords: 1 << 20}
	eng, err := crafty.New(heap, cfg)
	if err != nil {
		return err
	}
	layout := eng.Layout()
	th := eng.Register()
	store, err := crafty.NewKV(eng, th, crafty.KVConfig{Shards: 8, InitialSlotsPerShard: 64})
	if err != nil {
		return err
	}
	root := store.Root()

	const keys = 256
	fmt.Printf("churning %d puts/deletes over %d keys...\n", ops, keys)
	rng := rand.New(rand.NewSource(seed))
	churn := func(n int) error {
		for i := 0; i < n; i++ {
			k := rng.Intn(keys)
			key := []byte(fmt.Sprintf("key-%04d", k))
			if rng.Intn(5) == 0 {
				if _, err := store.Delete(th, key); err != nil {
					return err
				}
				continue
			}
			if err := store.Put(th, key, []byte(fmt.Sprintf("value-%04d-%08d", k, i))); err != nil {
				return err
			}
		}
		return nil
	}
	if err := churn(ops / 2); err != nil {
		return err
	}
	if checkpoint {
		// Quiesce the thread's log first: a checkpoint's watermark is only
		// sound over a state no future rollback can touch.
		if q, ok := any(th).(interface{ SyncDurable() error }); ok {
			if err := q.SyncDurable(); err != nil {
				return err
			}
		}
		crep, err := store.Checkpoint(eng)
		if err != nil {
			return err
		}
		fmt.Printf("checkpoint at half-churn: seq=%d epoch=%d, verified %d dirty shards, coalesced %d free blocks\n",
			crep.Seq, crep.Epoch, crep.DirtyShards, crep.Coalesced)
	}
	if err := churn(ops - ops/2); err != nil {
		return err
	}
	printArena(eng)

	fmt.Printf("injecting crash (each unfenced write survives with probability %.2f)...\n", persistProb)
	heap.Crash(crafty.NewRandomCrashPolicy(seed, persistProb))

	start := time.Now()
	report, err := crafty.Recover(heap, layout)
	if err != nil {
		return err
	}
	fmt.Printf("recovery: scanned %d thread logs, found %d sequences, rolled back %d (restored %d words) in %v\n",
		report.ThreadsScanned, report.SequencesFound, report.SequencesRolledBack, report.WordsRestored, time.Since(start))

	start = time.Now()
	eng2, err := crafty.Reopen(heap, layout, cfg)
	if err != nil {
		return err
	}
	eng2.AdvanceClock(report.MaxTimestamp)
	fmt.Printf("engine reopen (log reattach + arena header scavenge): %v\n", time.Since(start))
	start = time.Now()
	store2, rrep, err := crafty.ReopenKVWith(eng2, root, crafty.KVReopenOptions{Paranoid: paranoid})
	if err != nil {
		return err
	}
	reopenTime := time.Since(start)
	if rrep.FullVerify {
		fmt.Printf("index reopen: full path (%s), verified %d/%d shards in %v\n",
			rrep.FallbackReason, rrep.VerifiedShards, rrep.Shards, reopenTime)
	} else {
		fmt.Printf("index reopen: bounded by watermark seq=%d epoch=%d, verified %d/%d shards in %v\n",
			rrep.WatermarkSeq, rrep.WatermarkEpoch, rrep.VerifiedShards, rrep.Shards, reopenTime)
	}
	n, err := store2.Len(eng2.Register())
	if err != nil {
		return err
	}
	fmt.Printf("index verified after recovery: %d live entries\n", n)
	printArena(eng2)
	st := eng2.Arena().Stats()
	if st.LiveWords+st.FreeWords != st.UsedWords {
		return fmt.Errorf("arena leaked %d words across recovery", st.UsedWords-st.LiveWords-st.FreeWords)
	}
	fmt.Println("allocator reconciled with the index: zero leaked words; the store is usable again")
	return nil
}
