// Command craftyrecover demonstrates Crafty's crash recovery end to end on
// the emulated persistent heap: it runs a multi-threaded bank workload,
// injects a crash with a configurable persistence policy, runs the recovery
// observer, and verifies that the recovered state is consistent (the total
// balance is conserved).
//
// Usage:
//
//	craftyrecover -threads 4 -ops 2000 -persist-prob 0.5
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sync"

	"crafty"
)

func main() {
	var (
		threads     = flag.Int("threads", 4, "worker threads")
		ops         = flag.Int("ops", 2000, "transfers per thread before the crash")
		persistProb = flag.Float64("persist-prob", 0.5, "probability that an unflushed write survives the crash")
		seed        = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()
	if err := run(*threads, *ops, *persistProb, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "craftyrecover:", err)
		os.Exit(1)
	}
}

func run(threads, ops int, persistProb float64, seed int64) error {
	const accounts = 64
	const initial = 1000

	heap := crafty.NewHeap(crafty.HeapConfig{
		Words:            1 << 22,
		PersistLatency:   crafty.NoLatency,
		TrackPersistence: true,
	})
	eng, err := crafty.New(heap, crafty.Config{})
	if err != nil {
		return err
	}
	layout := eng.Layout()

	base := heap.MustCarve(accounts * crafty.WordsPerLine)
	addrOf := func(i int) crafty.Addr { return base + crafty.Addr(i*crafty.WordsPerLine) }
	// The setup thread doubles as worker 0, so no worker handle goes idle
	// with an old last-logged sequence (which would force recovery to rewind
	// further than necessary).
	workers := make([]crafty.Thread, threads)
	for g := range workers {
		workers[g] = eng.Register()
	}
	if err := workers[0].Atomic(func(tx crafty.Tx) error {
		for i := 0; i < accounts; i++ {
			tx.Store(addrOf(i), initial)
		}
		return nil
	}); err != nil {
		return err
	}

	fmt.Printf("running %d threads x %d transfers over %d accounts...\n", threads, ops, accounts)
	var wg sync.WaitGroup
	for g := 0; g < threads; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			th := workers[g]
			rng := rand.New(rand.NewSource(seed + int64(g)))
			for i := 0; i < ops; i++ {
				from, to := rng.Intn(accounts), rng.Intn(accounts)
				if from == to {
					to = (to + 1) % accounts
				}
				amount := uint64(1 + rng.Intn(9))
				_ = th.Atomic(func(tx crafty.Tx) error {
					tx.Store(addrOf(from), tx.Load(addrOf(from))-amount)
					tx.Store(addrOf(to), tx.Load(addrOf(to))+amount)
					return nil
				})
			}
		}(g)
	}
	wg.Wait()

	fmt.Printf("injecting crash (each unfenced write survives with probability %.2f)...\n", persistProb)
	heap.Crash(crafty.NewRandomCrashPolicy(seed, persistProb))

	report, err := crafty.Recover(heap, layout)
	if err != nil {
		return err
	}
	fmt.Printf("recovery: scanned %d thread logs, found %d sequences, rolled back %d (restored %d words)\n",
		report.ThreadsScanned, report.SequencesFound, report.SequencesRolledBack, report.WordsRestored)

	var total uint64
	for i := 0; i < accounts; i++ {
		total += heap.Load(addrOf(i))
	}
	fmt.Printf("total balance after recovery: %d (expected %d)\n", total, accounts*initial)
	if total != accounts*initial {
		return fmt.Errorf("recovered state is inconsistent")
	}

	// The heap can be reopened and used again.
	eng2, err := crafty.Reopen(heap, layout, crafty.Config{})
	if err != nil {
		return err
	}
	eng2.AdvanceClock(report.MaxTimestamp)
	th := eng2.Register()
	if err := th.Atomic(func(tx crafty.Tx) error {
		tx.Store(addrOf(0), tx.Load(addrOf(0))+1)
		tx.Store(addrOf(1), tx.Load(addrOf(1))-1)
		return nil
	}); err != nil {
		return err
	}
	fmt.Println("post-recovery transaction committed; the heap is usable again")
	return nil
}
