// Command craftyrecover demonstrates Crafty's crash recovery end to end on
// the emulated persistent heap: it runs a workload, injects a crash with a
// configurable persistence policy, runs the recovery observer, and verifies
// that the recovered state is consistent.
//
// Two workloads are available:
//
//   - bank (default): a multi-threaded transfer workload over a fixed set of
//     accounts; consistency means the total balance is conserved.
//   - kv: a single durable key-value store churned with puts and deletes, so
//     arena blocks are allocated and freed constantly; mid-churn it takes an
//     incremental checkpoint (unless -checkpoint=false), and after the crash
//     the engine recovery is followed by the bounded kv reopen — the report
//     shows each recovery phase's wall time, how many shards the watermark
//     let it skip, the arena occupancy (live, free, high-water), and that no
//     words leaked. -paranoid forces the full verify + reconcile path.
//
// Usage:
//
//	craftyrecover -threads 4 -ops 2000 -persist-prob 0.5
//	craftyrecover -workload kv -ops 2000 -persist-prob 0.5 -seed 7
//	craftyrecover -workload kv -paranoid
//	craftyrecover -workload kv -json      # machine-readable report on stdout
//
// With -json, the progress prose moves to stderr and stdout carries one JSON
// object: per-phase recovery wall times (rollback, engine reopen, index
// reopen), the rollback report, the bounded-vs-full reopen report (kv), and
// the consistency outcome — so CI and scripts can gate on recovery behaviour
// without parsing prose.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sync"
	"time"

	"crafty"
)

func main() {
	var (
		workload    = flag.String("workload", "bank", "workload to crash and recover: bank or kv")
		threads     = flag.Int("threads", 4, "worker threads (bank workload)")
		ops         = flag.Int("ops", 2000, "operations per thread before the crash")
		persistProb = flag.Float64("persist-prob", 0.5, "probability that an unflushed write survives the crash")
		seed        = flag.Int64("seed", 1, "random seed")
		checkpoint  = flag.Bool("checkpoint", true, "take an incremental checkpoint mid-churn (kv workload)")
		paranoid    = flag.Bool("paranoid", false, "recover with the full index verify + arena reconcile even when a checkpoint watermark would bound it (kv workload)")
		jsonOut     = flag.Bool("json", false, "emit a machine-readable recovery report on stdout (prose moves to stderr)")
	)
	flag.Parse()
	out := io.Writer(os.Stdout)
	if *jsonOut {
		out = os.Stderr
	}
	var (
		rep recoverReport
		err error
	)
	switch *workload {
	case "bank":
		rep, err = runBank(out, *threads, *ops, *persistProb, *seed)
	case "kv":
		rep, err = runKV(out, *ops, *persistProb, *seed, *checkpoint, *paranoid)
	default:
		err = fmt.Errorf("unknown -workload %q (want bank or kv)", *workload)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "craftyrecover:", err)
		os.Exit(1)
	}
	if *jsonOut {
		rep.Workload = *workload
		rep.PersistProb = *persistProb
		rep.Seed = *seed
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, "craftyrecover:", err)
			os.Exit(1)
		}
	}
}

// recoverReport is the -json output: the phase wall times every recovery has,
// plus the workload-specific sections (omitted when empty).
type recoverReport struct {
	Workload    string  `json:"workload"`
	PersistProb float64 `json:"persist_prob"`
	Seed        int64   `json:"seed"`

	// Rollback (crafty.Recover): the log scan and undo pass.
	RollbackNs          int64 `json:"rollback_ns"`
	ThreadsScanned      int   `json:"threads_scanned"`
	SequencesFound      int   `json:"sequences_found"`
	SequencesRolledBack int   `json:"sequences_rolled_back"`
	WordsRestored       int   `json:"words_restored"`

	// Bank workload: balance conservation.
	TotalBalance    uint64 `json:"total_balance,omitempty"`
	ExpectedBalance uint64 `json:"expected_balance,omitempty"`

	// KV workload: the remaining phases and the reopen report.
	EngineReopenNs int64       `json:"engine_reopen_ns,omitempty"`
	IndexReopenNs  int64       `json:"index_reopen_ns,omitempty"`
	Reopen         *reopenJSON `json:"reopen,omitempty"`
	Entries        uint64      `json:"entries,omitempty"`
	Arena          *arenaJSON  `json:"arena,omitempty"`
	Checkpoint     *markJSON   `json:"checkpoint,omitempty"`
}

// reopenJSON is the machine-readable crafty.KVReopenReport: whether the full
// verify path ran (and why), which watermark bounded the work, and the shard
// coverage.
type reopenJSON struct {
	FullVerify     bool   `json:"full_verify"`
	FallbackReason string `json:"fallback_reason,omitempty"`
	WatermarkSeq   uint64 `json:"watermark_seq,omitempty"`
	WatermarkEpoch uint64 `json:"watermark_epoch,omitempty"`
	VerifiedShards int    `json:"verified_shards"`
	Shards         int    `json:"shards"`
}

// arenaJSON is allocator occupancy after recovery; leaked_words must be 0.
type arenaJSON struct {
	LiveBlocks  int `json:"live_blocks"`
	LiveWords   int `json:"live_words"`
	FreeBlocks  int `json:"free_blocks"`
	FreeWords   int `json:"free_words"`
	UsedWords   int `json:"used_words"`
	DataWords   int `json:"capacity_words"`
	LeakedWords int `json:"leaked_words"`
}

// markJSON is the mid-churn checkpoint the kv workload took (if any).
type markJSON struct {
	Seq         uint64 `json:"seq"`
	Epoch       uint64 `json:"epoch"`
	DirtyShards int    `json:"dirty_shards"`
	Coalesced   int    `json:"coalesced"`
}

// printArena reports allocator occupancy; with the crash-recoverable
// allocator, live + free always accounts for every word below the high-water
// mark — nothing leaks across recovery.
func printArena(out io.Writer, eng *crafty.Engine) {
	st := eng.Arena().Stats()
	fmt.Fprintf(out, "arena: %d live blocks (%d words) + %d free blocks (%d words) = %d of %d words used; leaked %d\n",
		st.Live, st.LiveWords, st.FreeBlocks, st.FreeWords, st.UsedWords, st.DataWords,
		st.UsedWords-st.LiveWords-st.FreeWords)
}

func runBank(out io.Writer, threads, ops int, persistProb float64, seed int64) (recoverReport, error) {
	const accounts = 64
	const initial = 1000
	var rep recoverReport

	heap := crafty.NewHeap(crafty.HeapConfig{
		Words:            1 << 22,
		PersistLatency:   crafty.NoLatency,
		TrackPersistence: true,
	})
	eng, err := crafty.New(heap, crafty.Config{})
	if err != nil {
		return rep, err
	}
	layout := eng.Layout()

	base := heap.MustCarve(accounts * crafty.WordsPerLine)
	addrOf := func(i int) crafty.Addr { return base + crafty.Addr(i*crafty.WordsPerLine) }
	// The setup thread doubles as worker 0, so no worker handle goes idle
	// with an old last-logged sequence (which would force recovery to rewind
	// further than necessary).
	workers := make([]crafty.Thread, threads)
	for g := range workers {
		workers[g] = eng.Register()
	}
	if err := workers[0].Atomic(func(tx crafty.Tx) error {
		for i := 0; i < accounts; i++ {
			tx.Store(addrOf(i), initial)
		}
		return nil
	}); err != nil {
		return rep, err
	}

	fmt.Fprintf(out, "running %d threads x %d transfers over %d accounts...\n", threads, ops, accounts)
	var wg sync.WaitGroup
	txErrs := make([]error, threads)
	for g := 0; g < threads; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			th := workers[g]
			rng := rand.New(rand.NewSource(seed + int64(g)))
			for i := 0; i < ops; i++ {
				from, to := rng.Intn(accounts), rng.Intn(accounts)
				if from == to {
					to = (to + 1) % accounts
				}
				amount := uint64(1 + rng.Intn(9))
				err := th.Atomic(func(tx crafty.Tx) error {
					tx.Store(addrOf(from), tx.Load(addrOf(from))-amount)
					tx.Store(addrOf(to), tx.Load(addrOf(to))+amount)
					return nil
				})
				if err != nil && txErrs[g] == nil {
					txErrs[g] = err
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range txErrs {
		// A failed transfer never publishes, so the conservation check below
		// would still pass — surface the failure instead of masking it.
		if err != nil {
			return rep, fmt.Errorf("thread %d: transfer failed: %w", g, err)
		}
	}

	fmt.Fprintf(out, "injecting crash (each unfenced write survives with probability %.2f)...\n", persistProb)
	heap.Crash(crafty.NewRandomCrashPolicy(seed, persistProb))

	start := time.Now()
	report, err := crafty.Recover(heap, layout)
	if err != nil {
		return rep, err
	}
	rollback := time.Since(start)
	rep.RollbackNs = rollback.Nanoseconds()
	rep.ThreadsScanned = report.ThreadsScanned
	rep.SequencesFound = report.SequencesFound
	rep.SequencesRolledBack = report.SequencesRolledBack
	rep.WordsRestored = report.WordsRestored
	fmt.Fprintf(out, "recovery: scanned %d thread logs, found %d sequences, rolled back %d (restored %d words) in %v\n",
		report.ThreadsScanned, report.SequencesFound, report.SequencesRolledBack, report.WordsRestored, rollback)

	var total uint64
	for i := 0; i < accounts; i++ {
		total += heap.Load(addrOf(i))
	}
	rep.TotalBalance = total
	rep.ExpectedBalance = accounts * initial
	fmt.Fprintf(out, "total balance after recovery: %d (expected %d)\n", total, accounts*initial)
	if total != accounts*initial {
		return rep, fmt.Errorf("recovered state is inconsistent")
	}

	// The heap can be reopened and used again.
	eng2, err := crafty.Reopen(heap, layout, crafty.Config{})
	if err != nil {
		return rep, err
	}
	eng2.AdvanceClock(report.MaxTimestamp)
	th := eng2.Register()
	if err := th.Atomic(func(tx crafty.Tx) error {
		tx.Store(addrOf(0), tx.Load(addrOf(0))+1)
		tx.Store(addrOf(1), tx.Load(addrOf(1))-1)
		return nil
	}); err != nil {
		return rep, err
	}
	fmt.Fprintln(out, "post-recovery transaction committed; the heap is usable again")
	return rep, nil
}

func runKV(out io.Writer, ops int, persistProb float64, seed int64, checkpoint, paranoid bool) (recoverReport, error) {
	var rep recoverReport
	heap := crafty.NewHeap(crafty.HeapConfig{
		Words:            1 << 22,
		PersistLatency:   crafty.NoLatency,
		TrackPersistence: true,
	})
	cfg := crafty.Config{ArenaWords: 1 << 20}
	eng, err := crafty.New(heap, cfg)
	if err != nil {
		return rep, err
	}
	layout := eng.Layout()
	th := eng.Register()
	store, err := crafty.NewKV(eng, th, crafty.KVConfig{Shards: 8, InitialSlotsPerShard: 64})
	if err != nil {
		return rep, err
	}
	root := store.Root()

	const keys = 256
	fmt.Fprintf(out, "churning %d puts/deletes over %d keys...\n", ops, keys)
	rng := rand.New(rand.NewSource(seed))
	churn := func(n int) error {
		for i := 0; i < n; i++ {
			k := rng.Intn(keys)
			key := []byte(fmt.Sprintf("key-%04d", k))
			if rng.Intn(5) == 0 {
				if _, err := store.Delete(th, key); err != nil {
					return err
				}
				continue
			}
			if err := store.Put(th, key, []byte(fmt.Sprintf("value-%04d-%08d", k, i))); err != nil {
				return err
			}
		}
		return nil
	}
	if err := churn(ops / 2); err != nil {
		return rep, err
	}
	if checkpoint {
		// Quiesce the thread's log first: a checkpoint's watermark is only
		// sound over a state no future rollback can touch.
		if q, ok := any(th).(interface{ SyncDurable() error }); ok {
			if err := q.SyncDurable(); err != nil {
				return rep, err
			}
		}
		crep, err := store.Checkpoint(eng)
		if err != nil {
			return rep, err
		}
		rep.Checkpoint = &markJSON{Seq: crep.Seq, Epoch: crep.Epoch, DirtyShards: crep.DirtyShards, Coalesced: crep.Coalesced}
		fmt.Fprintf(out, "checkpoint at half-churn: seq=%d epoch=%d, verified %d dirty shards, coalesced %d free blocks\n",
			crep.Seq, crep.Epoch, crep.DirtyShards, crep.Coalesced)
	}
	if err := churn(ops - ops/2); err != nil {
		return rep, err
	}
	printArena(out, eng)

	fmt.Fprintf(out, "injecting crash (each unfenced write survives with probability %.2f)...\n", persistProb)
	heap.Crash(crafty.NewRandomCrashPolicy(seed, persistProb))

	start := time.Now()
	report, err := crafty.Recover(heap, layout)
	if err != nil {
		return rep, err
	}
	rollback := time.Since(start)
	rep.RollbackNs = rollback.Nanoseconds()
	rep.ThreadsScanned = report.ThreadsScanned
	rep.SequencesFound = report.SequencesFound
	rep.SequencesRolledBack = report.SequencesRolledBack
	rep.WordsRestored = report.WordsRestored
	fmt.Fprintf(out, "recovery: scanned %d thread logs, found %d sequences, rolled back %d (restored %d words) in %v\n",
		report.ThreadsScanned, report.SequencesFound, report.SequencesRolledBack, report.WordsRestored, rollback)

	start = time.Now()
	eng2, err := crafty.Reopen(heap, layout, cfg)
	if err != nil {
		return rep, err
	}
	eng2.AdvanceClock(report.MaxTimestamp)
	engineTime := time.Since(start)
	rep.EngineReopenNs = engineTime.Nanoseconds()
	fmt.Fprintf(out, "engine reopen (log reattach + arena header scavenge): %v\n", engineTime)
	start = time.Now()
	store2, rrep, err := crafty.ReopenKVWith(eng2, root, crafty.KVReopenOptions{Paranoid: paranoid})
	if err != nil {
		return rep, err
	}
	reopenTime := time.Since(start)
	rep.IndexReopenNs = reopenTime.Nanoseconds()
	rep.Reopen = &reopenJSON{
		FullVerify:     rrep.FullVerify,
		FallbackReason: rrep.FallbackReason,
		WatermarkSeq:   rrep.WatermarkSeq,
		WatermarkEpoch: rrep.WatermarkEpoch,
		VerifiedShards: rrep.VerifiedShards,
		Shards:         rrep.Shards,
	}
	if rrep.FullVerify {
		fmt.Fprintf(out, "index reopen: full path (%s), verified %d/%d shards in %v\n",
			rrep.FallbackReason, rrep.VerifiedShards, rrep.Shards, reopenTime)
	} else {
		fmt.Fprintf(out, "index reopen: bounded by watermark seq=%d epoch=%d, verified %d/%d shards in %v\n",
			rrep.WatermarkSeq, rrep.WatermarkEpoch, rrep.VerifiedShards, rrep.Shards, reopenTime)
	}
	n, err := store2.Len(eng2.Register())
	if err != nil {
		return rep, err
	}
	rep.Entries = n
	fmt.Fprintf(out, "index verified after recovery: %d live entries\n", n)
	printArena(out, eng2)
	st := eng2.Arena().Stats()
	rep.Arena = &arenaJSON{
		LiveBlocks:  st.Live,
		LiveWords:   st.LiveWords,
		FreeBlocks:  st.FreeBlocks,
		FreeWords:   st.FreeWords,
		UsedWords:   st.UsedWords,
		DataWords:   st.DataWords,
		LeakedWords: st.UsedWords - st.LiveWords - st.FreeWords,
	}
	if st.LiveWords+st.FreeWords != st.UsedWords {
		return rep, fmt.Errorf("arena leaked %d words across recovery", st.UsedWords-st.LiveWords-st.FreeWords)
	}
	fmt.Fprintln(out, "allocator reconciled with the index: zero leaked words; the store is usable again")
	return rep, nil
}
